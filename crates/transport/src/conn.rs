//! A TCP connection: reliable byte stream with Reno congestion control.
//!
//! Implements the classic algorithms the paper's §5.2 presumes: slow
//! start, congestion avoidance, fast retransmit / fast recovery (with
//! NewReno partial-ACK handling, which matters on high-BER wireless
//! links), Jacobson RTT estimation with Karn's rule, exponential RTO
//! backoff, cumulative ACKs with out-of-order reassembly, and FIN
//! teardown. It also implements the mobile-specific hook the paper cites
//! from Caceres & Iftode \[2\]: [`Connection::handoff_complete`], which
//! "utilizes the fast retransmission option immediately after handoff is
//! completed".

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use bytes::Bytes;

use netstack::{IpPacket, Node, Payload, Protocol};
use simnet::stats::{Counter, Sampler, Throughput};
use simnet::trace::Trace;
use simnet::{EventKey, SimDuration, Simulator};

use crate::seg::{SocketAddr, TcpSegment, MSS};

/// Lower bound on the retransmission timeout.
pub const MIN_RTO: f64 = 0.2;
/// Upper bound on the retransmission timeout.
pub const MAX_RTO: f64 = 60.0;
/// Consecutive RTOs on the same unacknowledged data after which the
/// connection gives up and aborts (RFC 1122 §4.2.3.5 "R2"-style). With
/// exponential backoff this tolerates roughly two minutes of total
/// silence, so only a dead peer or a permanent partition trips it —
/// handoff blackouts are orders of magnitude shorter.
pub const MAX_CONSECUTIVE_RTOS: u32 = 7;
/// Default advertised receive window (bytes).
pub const DEFAULT_RWND: u32 = 1 << 20;
/// Initial congestion window (segments).
pub const INITIAL_CWND_SEGS: f64 = 2.0;
/// Initial slow-start threshold (bytes).
pub const INITIAL_SSTHRESH: f64 = 256.0 * 1024.0;

/// Connection lifecycle state (condensed TCP state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Not yet opened.
    Closed,
    /// Client sent SYN, awaiting SYN-ACK.
    SynSent,
    /// Server got SYN, sent SYN-ACK, awaiting ACK.
    SynRcvd,
    /// Data may flow.
    Established,
    /// Both sides have exchanged and acknowledged FINs.
    Done,
    /// The connection gave up after [`MAX_CONSECUTIVE_RTOS`] consecutive
    /// retransmission timeouts: the peer is presumed dead. Terminal — no
    /// further segments are sent or accepted.
    Aborted,
}

/// Measurement counters exposed by every connection.
#[derive(Debug, Default)]
pub struct ConnectionStats {
    /// Payload bytes handed to [`Connection::send`].
    pub bytes_queued: Counter,
    /// Payload bytes delivered in order to the application.
    pub bytes_delivered: Counter,
    /// Segments retransmitted for any reason.
    pub retransmits: Counter,
    /// Fast retransmits (triple duplicate ACK or handoff signal).
    pub fast_retransmits: Counter,
    /// Retransmission timeouts taken.
    pub rtos: Counter,
    /// Aborts after the consecutive-RTO limit (0 or 1 per connection).
    pub aborts: Counter,
    /// Smoothed round-trip samples (seconds).
    pub rtt: Sampler,
    /// Goodput meter over delivered bytes.
    pub goodput: Throughput,
}

/// The unacknowledged send stream as a queue of refcounted chunks.
///
/// Each [`Connection::send_bytes`] call appends its `Bytes` chunk as-is, so
/// the page body a host queues is never copied into a linear buffer.
/// Segmentation slices chunks zero-copy (an MSS window that straddles a
/// chunk boundary is stitched with one small copy), and ACKs release whole
/// chunks from the front — dropping a refcount instead of `memmove`-ing the
/// remaining stream down, which on a multi-hundred-kilobyte transfer turns
/// the old `O(bytes · acks)` prune into `O(chunks)`.
struct SendBuf {
    chunks: VecDeque<Bytes>,
    /// Stream sequence number of the first byte of `chunks[0]`.
    base: u64,
    /// Total bytes across all chunks.
    len: u64,
}

impl SendBuf {
    fn new(base: u64) -> Self {
        SendBuf {
            chunks: VecDeque::new(),
            base,
            len: 0,
        }
    }

    /// Stream sequence number one past the last queued byte.
    fn end(&self) -> u64 {
        self.base + self.len
    }

    fn push(&mut self, data: Bytes) {
        if data.is_empty() {
            return;
        }
        self.len += data.len() as u64;
        self.chunks.push_back(data);
    }

    /// Bytes `[seq, seq + len)` as one `Bytes`; zero-copy when the range
    /// lies within a single chunk.
    fn slice(&self, seq: u64, len: usize) -> Bytes {
        debug_assert!(seq >= self.base && seq + len as u64 <= self.end());
        let mut off = seq - self.base;
        let mut i = 0;
        while self.chunks[i].len() as u64 <= off {
            off -= self.chunks[i].len() as u64;
            i += 1;
        }
        let off = off as usize;
        if off + len <= self.chunks[i].len() {
            return self.chunks[i].slice(off..off + len);
        }
        let mut out = Vec::with_capacity(len);
        out.extend_from_slice(&self.chunks[i][off..]);
        while out.len() < len {
            i += 1;
            let take = (len - out.len()).min(self.chunks[i].len());
            out.extend_from_slice(&self.chunks[i][..take]);
        }
        Bytes::from(out)
    }

    /// Releases the acknowledged prefix up to (not including) `seq`.
    fn release(&mut self, seq: u64) {
        if seq <= self.base {
            return;
        }
        while let Some(front) = self.chunks.front() {
            let flen = front.len() as u64;
            if self.base + flen > seq {
                break;
            }
            self.base += flen;
            self.len -= flen;
            self.chunks.pop_front();
        }
        if seq > self.base {
            let cut = (seq - self.base) as usize;
            let front = self.chunks.front_mut().expect("seq < end implies a chunk");
            *front = front.slice(cut..);
            self.len -= cut as u64;
            self.base = seq;
        }
    }
}

struct SendState {
    una: u64,
    nxt: u64,
    buf: SendBuf,
    cwnd: f64,
    ssthresh: f64,
    rwnd: u32,
    dupacks: u32,
    in_recovery: bool,
    recover: u64,
    recovery_retx_at: simnet::SimTime,
    srtt: Option<f64>,
    rttvar: f64,
    rto: f64,
    backoff: u32,
    rtt_seq: u64,
    rtt_sent_at: simnet::SimTime,
    rtt_pending: bool,
    fin_queued: bool,
    fin_sent: bool,
    fin_seq: u64,
}

struct RecvState {
    nxt: u64,
    ooo: BTreeMap<u64, Bytes>,
    peer_fin: Option<u64>,
    peer_fin_done: bool,
}

type DataCallback = Rc<dyn Fn(&mut Simulator, Bytes)>;
type EventCallback = Rc<dyn Fn(&mut Simulator)>;
type ErrorCallback = Rc<dyn Fn(&mut Simulator, &str)>;

/// One endpoint of a TCP connection.
///
/// Created via [`crate::Tcp::connect`] or handed to a listener's accept
/// callback; never constructed directly.
pub struct Connection {
    node: Rc<Node>,
    local: SocketAddr,
    remote: SocketAddr,
    state: Cell<State>,
    snd: RefCell<SendState>,
    rcv: RefCell<RecvState>,
    on_data: RefCell<Option<DataCallback>>,
    on_established: RefCell<Vec<EventCallback>>,
    on_closed: RefCell<Vec<EventCallback>>,
    on_error: RefCell<Vec<ErrorCallback>>,
    timer_key: Cell<Option<EventKey>>,
    /// Measurement counters.
    pub stats: ConnectionStats,
    trace: Trace,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snd = self.snd.borrow();
        f.debug_struct("Connection")
            .field("local", &self.local)
            .field("remote", &self.remote)
            .field("state", &self.state.get())
            .field("snd_una", &snd.una)
            .field("snd_nxt", &snd.nxt)
            .field("cwnd", &snd.cwnd)
            .finish()
    }
}

impl Connection {
    pub(crate) fn new(
        node: Rc<Node>,
        local: SocketAddr,
        remote: SocketAddr,
        trace: Trace,
    ) -> Rc<Self> {
        Rc::new(Connection {
            node,
            local,
            remote,
            state: Cell::new(State::Closed),
            snd: RefCell::new(SendState {
                una: 1,
                nxt: 1,
                buf: SendBuf::new(1),
                cwnd: INITIAL_CWND_SEGS * MSS as f64,
                ssthresh: INITIAL_SSTHRESH,
                rwnd: DEFAULT_RWND,
                dupacks: 0,
                in_recovery: false,
                recover: 0,
                recovery_retx_at: simnet::SimTime::ZERO,
                srtt: None,
                rttvar: 0.0,
                rto: 1.0,
                backoff: 0,
                rtt_seq: 0,
                rtt_sent_at: simnet::SimTime::ZERO,
                rtt_pending: false,
                fin_queued: false,
                fin_sent: false,
                fin_seq: 0,
            }),
            rcv: RefCell::new(RecvState {
                nxt: 1,
                ooo: BTreeMap::new(),
                peer_fin: None,
                peer_fin_done: false,
            }),
            on_data: RefCell::new(None),
            on_established: RefCell::new(Vec::new()),
            on_closed: RefCell::new(Vec::new()),
            on_error: RefCell::new(Vec::new()),
            timer_key: Cell::new(None),
            stats: ConnectionStats::default(),
            trace,
        })
    }

    /// Local socket address.
    pub fn local(&self) -> SocketAddr {
        self.local
    }

    /// Remote socket address.
    pub fn remote(&self) -> SocketAddr {
        self.remote
    }

    /// Current lifecycle state.
    pub fn state(&self) -> State {
        self.state.get()
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> f64 {
        self.snd.borrow().cwnd
    }

    /// Current retransmission timeout in seconds.
    pub fn rto_secs(&self) -> f64 {
        self.snd.borrow().rto
    }

    /// Bytes queued but not yet acknowledged.
    pub fn unacked(&self) -> u64 {
        let snd = self.snd.borrow();
        snd.buf.end().saturating_sub(snd.una)
    }

    /// Installs the ordered-data callback.
    pub fn on_data(&self, f: impl Fn(&mut Simulator, Bytes) + 'static) {
        *self.on_data.borrow_mut() = Some(Rc::new(f));
    }

    /// Registers a callback fired when the connection reaches
    /// [`State::Established`].
    pub fn on_established(&self, f: impl Fn(&mut Simulator) + 'static) {
        self.on_established.borrow_mut().push(Rc::new(f));
    }

    /// Registers a callback fired when the connection reaches
    /// [`State::Done`].
    pub fn on_closed(&self, f: impl Fn(&mut Simulator) + 'static) {
        self.on_closed.borrow_mut().push(Rc::new(f));
    }

    /// Registers a callback fired if the connection aborts — today only
    /// via the [`MAX_CONSECUTIVE_RTOS`] give-up — with a human-readable
    /// reason. A resilience layer should treat this as a *retryable*
    /// transport failure: the peer may return after a handoff or outage.
    pub fn on_error(&self, f: impl Fn(&mut Simulator, &str) + 'static) {
        self.on_error.borrow_mut().push(Rc::new(f));
    }

    // ------------------------------------------------------------------
    // Opening
    // ------------------------------------------------------------------

    pub(crate) fn open_active(self: &Rc<Self>, sim: &mut Simulator) {
        self.state.set(State::SynSent);
        let mut seg = TcpSegment::new(self.local, self.remote);
        seg.syn = true;
        seg.seq = 0;
        seg.wnd = DEFAULT_RWND;
        self.transmit(sim, seg);
        self.arm_timer(sim);
    }

    // ------------------------------------------------------------------
    // Sending
    // ------------------------------------------------------------------

    /// Queues `data` on the send buffer and transmits as the window allows.
    ///
    /// Copies `data` once into a shared chunk; callers that already hold a
    /// [`Bytes`] should use [`Connection::send_bytes`], which is zero-copy.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Connection::close`].
    pub fn send(self: &Rc<Self>, sim: &mut Simulator, data: &[u8]) {
        self.send_bytes(sim, Bytes::copy_from_slice(data));
    }

    /// Queues a refcounted chunk on the send buffer without copying it and
    /// transmits as the window allows.
    ///
    /// The chunk is segmented by slicing (`Bytes::slice`), so a page body
    /// produced once at the host is shared — not deep-cloned — all the way
    /// down to the wire.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Connection::close`].
    pub fn send_bytes(self: &Rc<Self>, sim: &mut Simulator, data: Bytes) {
        let queued = data.len() as u64;
        {
            let mut snd = self.snd.borrow_mut();
            assert!(!snd.fin_queued, "cannot send after close()");
            snd.buf.push(data);
        }
        self.stats.bytes_queued.add(queued);
        if self.state.get() == State::Established {
            self.try_send(sim);
        }
    }

    /// Queues a FIN after any buffered data and begins teardown.
    pub fn close(self: &Rc<Self>, sim: &mut Simulator) {
        self.snd.borrow_mut().fin_queued = true;
        if self.state.get() == State::Established {
            self.try_send(sim);
        }
    }

    /// Transmits as much buffered data as the congestion and receive
    /// windows currently allow.
    fn try_send(self: &Rc<Self>, sim: &mut Simulator) {
        loop {
            let seg = {
                let mut snd = self.snd.borrow_mut();
                let window = (snd.cwnd as u64).min(snd.rwnd as u64);
                let limit = snd.una + window;
                if snd.nxt >= limit {
                    break;
                }
                let stream_end = snd.buf.end();
                if snd.nxt < stream_end {
                    let len = MSS
                        .min((stream_end - snd.nxt) as usize)
                        .min((limit - snd.nxt) as usize);
                    let data = snd.buf.slice(snd.nxt, len);
                    let mut seg = TcpSegment::new(self.local, self.remote);
                    seg.seq = snd.nxt;
                    seg.data = data;
                    seg.ack_flag = true;
                    seg.ack = self.rcv.borrow().nxt;
                    seg.wnd = DEFAULT_RWND;
                    // RTT sampling (Karn's rule: first transmission only).
                    if !snd.rtt_pending {
                        snd.rtt_pending = true;
                        snd.rtt_seq = snd.nxt + len as u64;
                        snd.rtt_sent_at = sim.now();
                    }
                    snd.nxt += len as u64;
                    seg
                } else if snd.fin_queued && !snd.fin_sent {
                    let mut seg = TcpSegment::new(self.local, self.remote);
                    seg.seq = snd.nxt;
                    seg.fin = true;
                    seg.ack_flag = true;
                    seg.ack = self.rcv.borrow().nxt;
                    seg.wnd = DEFAULT_RWND;
                    snd.fin_sent = true;
                    snd.fin_seq = snd.nxt;
                    snd.nxt += 1;
                    seg
                } else {
                    break;
                }
            };
            self.transmit(sim, seg);
            self.arm_timer(sim);
        }
    }

    /// Retransmits one segment starting at `snd.una`.
    fn retransmit_una(self: &Rc<Self>, sim: &mut Simulator) {
        let seg = {
            let snd = self.snd.borrow();
            if self.state.get() == State::SynSent {
                let mut seg = TcpSegment::new(self.local, self.remote);
                seg.syn = true;
                seg.seq = 0;
                seg.wnd = DEFAULT_RWND;
                Some(seg)
            } else if snd.fin_sent && snd.una == snd.fin_seq {
                let mut seg = TcpSegment::new(self.local, self.remote);
                seg.seq = snd.fin_seq;
                seg.fin = true;
                seg.ack_flag = true;
                seg.ack = self.rcv.borrow().nxt;
                seg.wnd = DEFAULT_RWND;
                Some(seg)
            } else if snd.una < snd.buf.end() {
                let len = MSS.min((snd.buf.end() - snd.una) as usize);
                let mut seg = TcpSegment::new(self.local, self.remote);
                seg.seq = snd.una;
                seg.data = snd.buf.slice(snd.una, len);
                seg.ack_flag = true;
                seg.ack = self.rcv.borrow().nxt;
                seg.wnd = DEFAULT_RWND;
                Some(seg)
            } else {
                None
            }
        };
        if let Some(seg) = seg {
            self.stats.retransmits.incr();
            obs::metrics::incr("transport.retransmits");
            self.trace.log(
                sim.now(),
                "tcp",
                format!("{} RETX {}", self.local, seg.describe()),
            );
            self.transmit(sim, seg);
        }
    }

    fn transmit(&self, sim: &mut Simulator, seg: TcpSegment) {
        let size = seg.wire_size();
        let pkt = IpPacket::new(
            self.local.ip,
            self.remote.ip,
            Protocol::Tcp,
            Payload::new(seg, size),
        );
        // `Node::send` routes locally originated packets.
        let node = Rc::clone(&self.node);
        node.send(sim, pkt);
    }

    fn send_pure_ack(self: &Rc<Self>, sim: &mut Simulator) {
        let mut seg = TcpSegment::new(self.local, self.remote);
        seg.ack_flag = true;
        seg.ack = self.rcv.borrow().nxt;
        seg.seq = self.snd.borrow().nxt;
        seg.wnd = DEFAULT_RWND;
        self.transmit(sim, seg);
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn arm_timer(self: &Rc<Self>, sim: &mut Simulator) {
        self.cancel_timer(sim);
        let rto = self.snd.borrow().rto;
        let conn = Rc::clone(self);
        let key = sim.schedule_in_keyed(SimDuration::from_secs_f64(rto), move |sim| {
            conn.timer_key.set(None);
            conn.on_rto(sim);
        });
        self.timer_key.set(Some(key));
    }

    fn cancel_timer(&self, sim: &mut Simulator) {
        if let Some(key) = self.timer_key.take() {
            sim.cancel(key);
        }
    }

    fn on_rto(self: &Rc<Self>, sim: &mut Simulator) {
        let outstanding = {
            let snd = self.snd.borrow();
            snd.una < snd.nxt || self.state.get() == State::SynSent
        };
        if !outstanding {
            return;
        }
        self.stats.rtos.incr();
        obs::metrics::incr("transport.rto_fired");
        let give_up = {
            let mut snd = self.snd.borrow_mut();
            let flight = (snd.nxt - snd.una) as f64;
            snd.ssthresh = (flight / 2.0).max(2.0 * MSS as f64);
            snd.cwnd = MSS as f64;
            snd.dupacks = 0;
            snd.in_recovery = false;
            snd.backoff += 1;
            snd.rto = (snd.rto * 2.0).clamp(MIN_RTO, MAX_RTO);
            snd.rtt_pending = false; // Karn: no samples across retransmits
            snd.backoff >= MAX_CONSECUTIVE_RTOS
        };
        if give_up {
            self.abort(sim, "retransmission limit reached: peer unreachable");
            return;
        }
        self.trace.log(
            sim.now(),
            "tcp",
            format!("{} RTO, cwnd reset to 1 MSS", self.local),
        );
        self.retransmit_una(sim);
        self.arm_timer(sim);
    }

    /// Tears the connection down unilaterally, cancelling its timer and
    /// firing the [`Connection::on_error`] callbacks with `reason`.
    /// Idempotent; a no-op once the connection is `Done` or `Aborted`.
    pub fn abort(self: &Rc<Self>, sim: &mut Simulator, reason: &str) {
        if matches!(self.state.get(), State::Done | State::Aborted) {
            return;
        }
        self.state.set(State::Aborted);
        self.cancel_timer(sim);
        self.stats.aborts.incr();
        obs::metrics::incr("transport.aborts");
        self.trace
            .log(sim.now(), "tcp", format!("{} ABORT: {reason}", self.local));
        let listeners: Vec<_> = self.on_error.borrow().clone();
        for l in listeners {
            l(sim, reason);
        }
    }

    // ------------------------------------------------------------------
    // Receiving
    // ------------------------------------------------------------------

    /// Processes an inbound segment addressed to this connection.
    pub fn handle_segment(self: &Rc<Self>, sim: &mut Simulator, seg: TcpSegment) {
        match self.state.get() {
            State::Closed => {
                // Passive open: first segment must be the peer's SYN.
                if seg.syn && !seg.ack_flag {
                    self.rcv.borrow_mut().nxt = seg.seq + 1;
                    self.state.set(State::SynRcvd);
                    let mut reply = TcpSegment::new(self.local, self.remote);
                    reply.syn = true;
                    reply.ack_flag = true;
                    reply.seq = 0;
                    reply.ack = seg.seq + 1;
                    reply.wnd = DEFAULT_RWND;
                    self.transmit(sim, reply);
                    self.arm_timer(sim);
                }
            }
            State::SynSent => {
                if seg.syn && seg.ack_flag && seg.ack == 1 {
                    self.rcv.borrow_mut().nxt = seg.seq + 1;
                    {
                        let mut snd = self.snd.borrow_mut();
                        snd.rwnd = seg.wnd.max(MSS as u32);
                    }
                    self.cancel_timer(sim);
                    self.become_established(sim);
                    self.send_pure_ack(sim);
                    self.try_send(sim);
                }
            }
            State::SynRcvd => {
                if seg.ack_flag && seg.ack == 1 && !seg.syn {
                    self.cancel_timer(sim);
                    self.become_established(sim);
                    // The ACK may carry data already.
                    if !seg.data.is_empty() || seg.fin {
                        self.process_established(sim, seg);
                    }
                } else if seg.syn && !seg.ack_flag {
                    // Duplicate SYN: re-send SYN-ACK.
                    let mut reply = TcpSegment::new(self.local, self.remote);
                    reply.syn = true;
                    reply.ack_flag = true;
                    reply.seq = 0;
                    reply.ack = seg.seq + 1;
                    reply.wnd = DEFAULT_RWND;
                    self.transmit(sim, reply);
                }
            }
            State::Established => self.process_established(sim, seg),
            State::Done => {
                // Late segments after teardown: re-ACK FINs so the peer can
                // finish, ignore everything else.
                if seg.fin {
                    self.send_pure_ack(sim);
                }
            }
            State::Aborted => {
                // The connection is dead; late segments are dropped.
            }
        }
    }

    fn become_established(self: &Rc<Self>, sim: &mut Simulator) {
        self.state.set(State::Established);
        self.trace
            .log(sim.now(), "tcp", format!("{} established", self.local));
        let listeners: Vec<_> = self.on_established.borrow().clone();
        for l in listeners {
            l(sim);
        }
    }

    fn process_established(self: &Rc<Self>, sim: &mut Simulator, seg: TcpSegment) {
        if seg.ack_flag {
            self.process_ack(sim, &seg);
        }
        if !seg.data.is_empty() || seg.fin {
            self.process_payload(sim, seg);
        }
        self.maybe_finish(sim);
    }

    fn process_ack(self: &Rc<Self>, sim: &mut Simulator, seg: &TcpSegment) {
        enum AckAction {
            None,
            FastRetransmit,
            PartialRetransmit,
        }
        let mut action = AckAction::None;
        {
            let mut snd = self.snd.borrow_mut();
            snd.rwnd = seg.wnd.max(MSS as u32);
            if seg.ack > snd.una {
                let newly = seg.ack - snd.una;
                snd.una = seg.ack;
                snd.backoff = 0;

                // RTT sample (Karn's rule handled at send/RTO sites).
                if snd.rtt_pending && seg.ack >= snd.rtt_seq {
                    let sample = sim.now().since(snd.rtt_sent_at).as_secs_f64();
                    snd.rtt_pending = false;
                    match snd.srtt {
                        None => {
                            snd.srtt = Some(sample);
                            snd.rttvar = sample / 2.0;
                        }
                        Some(srtt) => {
                            snd.rttvar = 0.75 * snd.rttvar + 0.25 * (srtt - sample).abs();
                            snd.srtt = Some(0.875 * srtt + 0.125 * sample);
                        }
                    }
                    snd.rto = (snd.srtt.unwrap() + 4.0 * snd.rttvar).clamp(MIN_RTO, MAX_RTO);
                    self.stats.rtt.record(sample);
                }

                if snd.in_recovery {
                    if seg.ack >= snd.recover {
                        // Full acknowledgement: leave recovery.
                        snd.in_recovery = false;
                        snd.cwnd = snd.ssthresh;
                        snd.dupacks = 0;
                    } else {
                        // NewReno partial ACK: the next hole is lost too.
                        snd.cwnd = (snd.cwnd - newly as f64 + MSS as f64).max(MSS as f64);
                        action = AckAction::PartialRetransmit;
                    }
                } else {
                    snd.dupacks = 0;
                    if snd.cwnd < snd.ssthresh {
                        snd.cwnd += MSS as f64; // slow start
                    } else {
                        snd.cwnd += (MSS as f64) * (MSS as f64) / snd.cwnd; // AIMD
                    }
                }

                // Release acked chunks from the front of the buffer.
                let acked_in_buf = snd.una.min(snd.buf.end());
                snd.buf.release(acked_in_buf);
            } else if seg.is_pure_ack() && seg.ack == snd.una && snd.nxt > snd.una {
                snd.dupacks += 1;
                if snd.in_recovery {
                    // Inflate and (below) possibly transmit new data. If
                    // dupacks keep arriving well after our last
                    // retransmission, that retransmission was itself lost:
                    // send it again rather than idling until a backed-off
                    // RTO — essential on channels that kill retransmissions
                    // too. Time-guarded so one loss's natural dupack burst
                    // does not trigger redundant resends.
                    snd.cwnd += MSS as f64;
                    let guard = (snd.rto / 2.0).max(0.1);
                    if sim.now().since(snd.recovery_retx_at).as_secs_f64() > guard {
                        snd.recovery_retx_at = sim.now();
                        action = AckAction::PartialRetransmit;
                    }
                } else if snd.dupacks == 3 {
                    let flight = (snd.nxt - snd.una) as f64;
                    snd.ssthresh = (flight / 2.0).max(2.0 * MSS as f64);
                    snd.cwnd = snd.ssthresh + 3.0 * MSS as f64;
                    snd.in_recovery = true;
                    snd.recover = snd.nxt;
                    snd.recovery_retx_at = sim.now();
                    action = AckAction::FastRetransmit;
                }
            }
        }

        match action {
            AckAction::FastRetransmit => {
                self.stats.fast_retransmits.incr();
                obs::metrics::incr("transport.fast_retransmits");
                self.trace.log(
                    sim.now(),
                    "tcp",
                    format!("{} fast retransmit (3 dupacks)", self.local),
                );
                self.retransmit_una(sim);
                self.arm_timer(sim);
            }
            AckAction::PartialRetransmit => {
                self.retransmit_una(sim);
                self.arm_timer(sim);
            }
            AckAction::None => {}
        }

        // Timer management + further transmission.
        let (all_acked, outstanding) = {
            let snd = self.snd.borrow();
            (snd.una >= snd.nxt, snd.una < snd.nxt)
        };
        if all_acked {
            self.cancel_timer(sim);
        } else if outstanding && matches!(action, AckAction::None) && seg.ack > 0 {
            // Restart timer on forward progress.
            let progressed = { self.snd.borrow().una == seg.ack };
            if progressed {
                self.arm_timer(sim);
            }
        }
        self.try_send(sim);
    }

    fn process_payload(self: &Rc<Self>, sim: &mut Simulator, seg: TcpSegment) {
        let mut to_deliver: Vec<Bytes> = Vec::new();
        {
            let mut rcv = self.rcv.borrow_mut();
            if seg.fin {
                rcv.peer_fin = Some(seg.seq + seg.data.len() as u64);
            }
            if !seg.data.is_empty() {
                if seg.seq == rcv.nxt {
                    rcv.nxt += seg.data.len() as u64;
                    to_deliver.push(seg.data.clone());
                    // Drain contiguous out-of-order segments.
                    while let Some((&s, _)) = rcv.ooo.first_key_value() {
                        if s > rcv.nxt {
                            break;
                        }
                        let (s, data) = rcv.ooo.pop_first().expect("nonempty");
                        if s + data.len() as u64 <= rcv.nxt {
                            continue; // fully duplicate
                        }
                        let skip = (rcv.nxt - s) as usize;
                        let fresh = data.slice(skip..);
                        rcv.nxt += fresh.len() as u64;
                        to_deliver.push(fresh);
                    }
                } else if seg.seq > rcv.nxt {
                    rcv.ooo.entry(seg.seq).or_insert_with(|| seg.data.clone());
                }
            }
            // Consume the FIN once all data before it has arrived.
            if let Some(fin_seq) = rcv.peer_fin {
                if !rcv.peer_fin_done && rcv.nxt >= fin_seq {
                    rcv.nxt = fin_seq + 1;
                    rcv.peer_fin_done = true;
                }
            }
        }

        for data in to_deliver {
            self.stats.bytes_delivered.add(data.len() as u64);
            self.stats.goodput.record(sim.now(), data.len() as u64);
            let cb = self.on_data.borrow().clone();
            if let Some(cb) = cb {
                cb(sim, data);
            }
        }
        // Every data/FIN segment is acknowledged immediately: out-of-order
        // arrivals generate the duplicate ACKs fast retransmit feeds on.
        self.send_pure_ack(sim);
    }

    fn maybe_finish(self: &Rc<Self>, sim: &mut Simulator) {
        let ours_done = {
            let snd = self.snd.borrow();
            snd.fin_sent && snd.una > snd.fin_seq
        };
        let theirs_done = self.rcv.borrow().peer_fin_done;
        if ours_done && theirs_done && self.state.get() != State::Done {
            self.state.set(State::Done);
            self.cancel_timer(sim);
            self.trace
                .log(sim.now(), "tcp", format!("{} closed", self.local));
            let listeners: Vec<_> = self.on_closed.borrow().clone();
            for l in listeners {
                l(sim);
            }
        }
    }

    // ------------------------------------------------------------------
    // Mobile extension: fast retransmission after handoff [2]
    // ------------------------------------------------------------------

    /// Signals that a handoff has just completed (Caceres & Iftode \[2\]).
    ///
    /// As a sender with unacknowledged data, the connection immediately
    /// performs a fast retransmit instead of idling until the (backed-off)
    /// retransmission timer expires. As a receiver, it sends three
    /// duplicate ACKs so the *peer* fast-retransmits anything lost in the
    /// blackout. Both actions are cheap no-ops when nothing is in flight.
    pub fn handoff_complete(self: &Rc<Self>, sim: &mut Simulator) {
        if matches!(self.state.get(), State::Done | State::Aborted) {
            return;
        }
        let has_unacked = {
            let snd = self.snd.borrow();
            snd.una < snd.nxt
        };
        if has_unacked {
            {
                let mut snd = self.snd.borrow_mut();
                if !snd.in_recovery {
                    let flight = (snd.nxt - snd.una) as f64;
                    snd.ssthresh = (flight / 2.0).max(2.0 * MSS as f64);
                    snd.cwnd = snd.ssthresh + 3.0 * MSS as f64;
                    snd.in_recovery = true;
                    snd.recover = snd.nxt;
                }
                snd.recovery_retx_at = sim.now();
            }
            self.stats.fast_retransmits.incr();
            obs::metrics::incr("transport.fast_retransmits");
            self.trace.log(
                sim.now(),
                "tcp",
                format!("{} handoff-complete fast retransmit", self.local),
            );
            self.retransmit_una(sim);
            self.arm_timer(sim);
        }
        if self.state.get() == State::Established {
            // Three duplicate ACKs prod the peer into fast retransmit.
            for _ in 0..3 {
                self.send_pure_ack(sim);
            }
        }
    }
}
