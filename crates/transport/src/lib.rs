#![warn(missing_docs)]
//! # transport — TCP (Reno) and its mobile variants, plus UDP
//!
//! §5.2 of the paper: "TCP was designed for reliable data transport on
//! wired networks … when it is applied directly to mobile networks, TCP
//! performs poorly due to factors such as error-prone wireless channels,
//! frequent handoffs and disconnections." The paper then cites three
//! remedies, all implemented here:
//!
//! * [`split`] — **Split/Indirect TCP** (Yavatkar & Bhagawat \[16\]): the
//!   path is split at the base station into a wired and a wireless
//!   sub-connection, confining wireless loss recovery to the short hop.
//! * [`snoop`] — **Snoop packet caching** (Balakrishnan et al. \[1\]): the
//!   base station caches data segments and retransmits locally on
//!   duplicate ACKs, hiding wireless losses from the fixed sender.
//! * [`Connection::handoff_complete`] — **fast retransmission after
//!   handoff** (Caceres & Iftode \[2\]): the mobile signals handoff
//!   completion and triggers an immediate fast retransmit instead of
//!   waiting out a coarse retransmission timeout.
//!
//! The baseline is a byte-accurate Reno TCP ([`conn`]): three-way
//! handshake, slow start, congestion avoidance, fast retransmit/recovery,
//! Jacobson/Karn RTO estimation, out-of-order reassembly and FIN
//! teardown, running over `netstack` datagrams. [`udp`] provides the
//! datagram service used by lightweight middleware exchanges.

pub mod conn;
pub mod seg;
pub mod snoop;
pub mod split;
pub mod tcp;
pub mod udp;

pub use conn::{Connection, ConnectionStats, State, MAX_CONSECUTIVE_RTOS};
pub use seg::{SocketAddr, TcpSegment, MSS, TCP_HEADER_BYTES};
pub use snoop::SnoopAgent;
pub use split::SplitProxy;
pub use tcp::Tcp;
pub use udp::Udp;
