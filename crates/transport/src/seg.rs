//! TCP segments and socket addresses.

use bytes::Bytes;

use netstack::Ip;

/// Simulated TCP header size in bytes.
pub const TCP_HEADER_BYTES: usize = 20;

/// Maximum segment size (payload bytes per segment).
pub const MSS: usize = 1460;

/// An `(address, port)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketAddr {
    /// Network address.
    pub ip: Ip,
    /// Port number.
    pub port: u16,
}

impl SocketAddr {
    /// Builds a socket address.
    pub fn new(ip: Ip, port: u16) -> Self {
        SocketAddr { ip, port }
    }
}

impl std::fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// A TCP segment.
///
/// Sequence and acknowledgement numbers count stream bytes from an initial
/// sequence number of 0 (deterministic ISNs keep runs reproducible); SYN
/// and FIN each consume one sequence number, as in real TCP.
#[derive(Debug, Clone)]
pub struct TcpSegment {
    /// Sender's socket address.
    pub src: SocketAddr,
    /// Receiver's socket address.
    pub dst: SocketAddr,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: u64,
    /// Cumulative acknowledgement: next byte expected from the peer.
    pub ack: u64,
    /// SYN flag.
    pub syn: bool,
    /// ACK flag (the `ack` field is only meaningful when set).
    pub ack_flag: bool,
    /// FIN flag.
    pub fin: bool,
    /// Advertised receive window in bytes.
    pub wnd: u32,
    /// Payload bytes.
    pub data: Bytes,
}

impl TcpSegment {
    /// A segment with no flags and no data (builder starting point).
    pub fn new(src: SocketAddr, dst: SocketAddr) -> Self {
        TcpSegment {
            src,
            dst,
            seq: 0,
            ack: 0,
            syn: false,
            ack_flag: false,
            fin: false,
            wnd: 0,
            data: Bytes::new(),
        }
    }

    /// Bytes this segment occupies inside the IP payload.
    pub fn wire_size(&self) -> usize {
        TCP_HEADER_BYTES + self.data.len()
    }

    /// The number of sequence numbers this segment consumes
    /// (payload length, plus one each for SYN and FIN).
    pub fn seq_len(&self) -> u64 {
        self.data.len() as u64 + u64::from(self.syn) + u64::from(self.fin)
    }

    /// True for a segment that carries no data and only acknowledges.
    pub fn is_pure_ack(&self) -> bool {
        self.ack_flag && !self.syn && !self.fin && self.data.is_empty()
    }

    /// Short human-readable form for traces: `"SYN seq=0"`, `"ACK=4381"`,
    /// `"seq=1 len=1460 ACK=1"`, …
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.syn {
            parts.push("SYN".to_owned());
        }
        if self.fin {
            parts.push("FIN".to_owned());
        }
        if !self.data.is_empty() || self.syn || self.fin {
            parts.push(format!("seq={}", self.seq));
        }
        if !self.data.is_empty() {
            parts.push(format!("len={}", self.data.len()));
        }
        if self.ack_flag {
            parts.push(format!("ACK={}", self.ack));
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa(port: u16) -> SocketAddr {
        SocketAddr::new(Ip::new(10, 0, 0, 1), port)
    }

    #[test]
    fn wire_size_counts_header_and_data() {
        let mut s = TcpSegment::new(sa(1), sa(2));
        assert_eq!(s.wire_size(), TCP_HEADER_BYTES);
        s.data = Bytes::from(vec![0u8; 100]);
        assert_eq!(s.wire_size(), TCP_HEADER_BYTES + 100);
    }

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let mut s = TcpSegment::new(sa(1), sa(2));
        assert_eq!(s.seq_len(), 0);
        s.syn = true;
        assert_eq!(s.seq_len(), 1);
        s.fin = true;
        s.data = Bytes::from_static(b"abc");
        assert_eq!(s.seq_len(), 5);
    }

    #[test]
    fn pure_ack_detection() {
        let mut s = TcpSegment::new(sa(1), sa(2));
        s.ack_flag = true;
        assert!(s.is_pure_ack());
        s.data = Bytes::from_static(b"x");
        assert!(!s.is_pure_ack());
        s.data = Bytes::new();
        s.fin = true;
        assert!(!s.is_pure_ack());
    }

    #[test]
    fn describe_is_informative() {
        let mut s = TcpSegment::new(sa(1), sa(2));
        s.syn = true;
        assert_eq!(s.describe(), "SYN seq=0");
        s.syn = false;
        s.ack_flag = true;
        s.ack = 42;
        assert_eq!(s.describe(), "ACK=42");
        s.data = Bytes::from_static(b"hello");
        s.seq = 7;
        assert_eq!(s.describe(), "seq=7 len=5 ACK=42");
    }

    #[test]
    fn socket_addr_displays() {
        assert_eq!(sa(8080).to_string(), "10.0.0.1:8080");
    }
}
