//! Per-layer metrics registry.
//!
//! Layers publish named counters and histograms through free functions
//! ([`add`], [`observe`]) that write into a **thread-local** registry.
//! Thread-locality is what keeps the fleet engine's determinism
//! guarantee: each shard thread accumulates its own registry, the
//! runner drains it ([`take`]) at a shard boundary, and registries
//! merge in canonical shard order. [`Metrics::merge`] is associative
//! and commutative, so the merged totals are independent of how users
//! were sharded across threads — and independent of whether the runner
//! drains per user or per shard (the fleet engine drains per shard to
//! keep the per-user cost at zero allocations).
//!
//! Publication is **disabled by default**. A disabled [`add`] is one
//! thread-local flag load and a predictable branch — cheap enough to
//! leave in packet-level hot paths (the F5 experiment in `bench`
//! measures exactly this overhead and CI gates it at 3%).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;

use crate::hist::Histogram;

/// An ordered, mergeable snapshot of published metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Named monotonic counters, e.g. `"transport.rto_fired"`.
    pub counters: BTreeMap<&'static str, u64>,
    /// Named value distributions, e.g. `"host.cpu_ns"`.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// The value of a counter (zero when never published).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Adds `other` into `self`. Associative and commutative.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_default() += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
    }

    /// True when nothing was published.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Serialises the registry as a JSON object with sorted keys —
    /// deterministic for identical contents.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{k}\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count(),
                h.percentile(50.0),
                h.percentile(90.0),
                h.percentile(99.0)
            ));
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k:<40} {v}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(
                f,
                "{k:<40} n={} p50={} p90={} p99={}",
                h.count(),
                h.percentile(50.0),
                h.percentile(90.0),
                h.percentile(99.0)
            )?;
        }
        Ok(())
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static REGISTRY: RefCell<Metrics> = RefCell::new(Metrics::default());
}

/// Scoped enablement of the thread's registry; publication stops (and
/// the previous state is restored) when the guard drops.
#[derive(Debug)]
pub struct MetricsGuard {
    was_enabled: bool,
}

impl Drop for MetricsGuard {
    fn drop(&mut self) {
        ENABLED.with(|e| e.set(self.was_enabled));
    }
}

/// Enables metric publication on this thread until the guard drops.
#[must_use = "publication stops when the guard drops"]
pub fn enable() -> MetricsGuard {
    let was_enabled = ENABLED.with(|e| e.replace(true));
    MetricsGuard { was_enabled }
}

/// True when this thread is currently publishing metrics.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Adds `delta` to the named counter. A no-op (one flag check) unless
/// the thread's registry is [`enable`]d.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if !ENABLED.with(|e| e.get()) {
        return;
    }
    REGISTRY.with(|r| *r.borrow_mut().counters.entry(name).or_default() += delta);
}

/// Adds one to the named counter.
#[inline]
pub fn incr(name: &'static str) {
    add(name, 1);
}

/// Records `value` into the named histogram. A no-op unless enabled.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !ENABLED.with(|e| e.get()) {
        return;
    }
    REGISTRY.with(|r| r.borrow_mut().histograms.entry(name).or_default().record(value));
}

/// Drains the thread's registry, returning everything published since
/// the last `take` and leaving it empty.
pub fn take() -> Metrics {
    REGISTRY.with(|r| std::mem::take(&mut *r.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_publication_is_dropped() {
        let _ = take();
        add("x.dropped", 5);
        observe("x.hist", 1);
        assert!(take().is_empty());
    }

    #[test]
    fn enabled_publication_accumulates_and_drains() {
        let _ = take();
        {
            let _guard = enable();
            assert!(enabled());
            add("a.count", 2);
            add("a.count", 3);
            incr("b.count");
            observe("c.hist", 1_000);
            observe("c.hist", 2_000);
        }
        assert!(!enabled());
        let m = take();
        assert_eq!(m.counter("a.count"), 5);
        assert_eq!(m.counter("b.count"), 1);
        assert_eq!(m.histograms["c.hist"].count(), 2);
        assert!(take().is_empty(), "take drains");
    }

    #[test]
    fn nested_guards_restore_state() {
        let _ = take();
        let outer = enable();
        {
            let _inner = enable();
        }
        assert!(enabled(), "inner guard must not disable the outer scope");
        drop(outer);
        assert!(!enabled());
    }

    #[test]
    fn merge_is_grouping_invariant() {
        let mut a = Metrics::default();
        a.counters.insert("k", 1);
        a.histograms.entry("h").or_default().record(10);
        let mut b = Metrics::default();
        b.counters.insert("k", 2);
        b.counters.insert("only_b", 7);
        b.histograms.entry("h").or_default().record(20);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("k"), 3);
        assert_eq!(ab.counter("only_b"), 7);
        assert_eq!(ab.histograms["h"].count(), 2);
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let mut m = Metrics::default();
        m.counters.insert("z.last", 1);
        m.counters.insert("a.first", 2);
        m.histograms.entry("h").or_default().record(100);
        let json = m.to_json();
        assert!(json.find("a.first").unwrap() < json.find("z.last").unwrap());
        assert_eq!(json, m.clone().to_json());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
