//! Deterministic sim-time telemetry: fixed-interval resource series.
//!
//! The shared-world engine (PR 6) made infrastructure contention real —
//! cells, gateway CPUs, a shared content cache and host CPUs all serve
//! many users — but its `ContentionStats` are scalars: they say *how
//! much* waiting happened, never *when* or *where first*. This module is
//! the time dimension: named per-resource series sampled into **fixed
//! sim-time bins**, so a saturation knee has an onset time and a
//! responsible resource, not just a p99.
//!
//! ## Determinism argument
//!
//! Thread-count invariance falls out of three choices:
//!
//! 1. **Fixed bins.** A sample at sim-time `t` lands in bin
//!    `t / bin_ns` — a pure function of simulated time, never of wall
//!    clock, scheduling, or shard boundaries.
//! 2. **Commutative accumulators.** Each bin holds integer
//!    `(sum, weight, max)` accumulators; merging bins is `+`/`max`,
//!    which is associative and commutative, so the order shards are
//!    folded in cannot change the result.
//! 3. **Canonical export order.** Series are exported sorted by name
//!    (resource names embed zero-padded global indices), and bins
//!    sorted by start time — a `BTreeMap` walk, independent of
//!    insertion order.
//!
//! Everything is integer nanoseconds and integer counts; exported values
//! are formatted from integers only (thousandths split with `/ 1000`
//! and `% 1000`), so fixed-seed exports are **byte-identical at any
//! thread count**.
//!
//! ## Cost when disabled
//!
//! The engine threads an `Option<&mut Telemetry>` through its hot path;
//! disabled telemetry is `None`, so the per-transaction cost is a branch
//! per instrumentation point. F10 (`bench::telemetry_experiment`) prices
//! that branch and CI gates it at ≤ 3%, the same budget as the disabled
//! recorder.

use std::collections::BTreeMap;

/// Default series bin width: 100 ms of simulated time.
pub const DEFAULT_BIN_NS: u64 = 100_000_000;

/// How a series turns raw samples into a per-bin value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Busy-time fraction: `record_busy` spreads busy nanoseconds across
    /// the bins an interval overlaps; the bin value is `busy / bin_ns`.
    Utilization,
    /// Sampled gauge (queue depth, in-flight concurrency): the bin value
    /// is the mean of the samples landing in it; the peak is kept too.
    Gauge,
    /// Ratio of two event counters (cache hits / lookups): the bin value
    /// is `num / den` over the bin.
    Rate,
}

impl SeriesKind {
    /// Stable lower-case name used by the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            SeriesKind::Utilization => "util",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Rate => "rate",
        }
    }
}

/// Integer accumulators for one fixed sim-time bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Bin {
    sum: u64,
    weight: u64,
    max: u64,
}

impl Bin {
    fn absorb(&mut self, other: Bin) {
        self.sum += other.sum;
        self.weight += other.weight;
        self.max = self.max.max(other.max);
    }
}

/// One named resource's binned history.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Series {
    kind: SeriesKind,
    bins: BTreeMap<u64, Bin>,
}

/// Handle returned by [`Telemetry::register`]; records by index so the
/// hot path never hashes or compares a series name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// One exported point: a bin's raw accumulators plus its derived value
/// in integer thousandths of the series' natural unit (a utilization of
/// 0.134 exports as `milli == 134`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Bin start, simulated nanoseconds.
    pub t_ns: u64,
    /// Kind-dependent numerator (busy ns, gauge sample sum, rate hits).
    pub sum: u64,
    /// Kind-dependent denominator (unused, sample count, rate lookups).
    pub weight: u64,
    /// Peak gauge sample in the bin (zero for other kinds).
    pub max: u64,
    /// The bin value × 1000, computed in integer arithmetic.
    pub milli: u64,
}

/// A deterministic set of named, fixed-bin resource series.
///
/// Resources register once (getting a cheap [`SeriesId`]), record by id
/// on the hot path, and shards merge commutatively; exports walk series
/// in name order and bins in time order, so fixed-seed output is
/// byte-identical at any thread count (see the module docs for the full
/// argument).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Telemetry {
    bin_ns: u64,
    names: Vec<String>,
    series: Vec<Series>,
    index: BTreeMap<String, usize>,
}

impl Telemetry {
    /// An empty telemetry set with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_ns` is zero.
    pub fn new(bin_ns: u64) -> Self {
        assert!(bin_ns > 0, "telemetry bin width must be positive");
        Telemetry {
            bin_ns,
            names: Vec::new(),
            series: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// The fixed bin width in simulated nanoseconds.
    pub fn bin_ns(&self) -> u64 {
        self.bin_ns
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no series are registered.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Registers (or looks up) the series `name`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn register(&mut self, name: &str, kind: SeriesKind) -> SeriesId {
        if let Some(&slot) = self.index.get(name) {
            assert_eq!(
                self.series[slot].kind, kind,
                "series {name:?} re-registered with a different kind"
            );
            return SeriesId(slot);
        }
        let slot = self.series.len();
        self.names.push(name.to_owned());
        self.series.push(Series { kind, bins: BTreeMap::new() });
        self.index.insert(name.to_owned(), slot);
        SeriesId(slot)
    }

    fn bin_of(&self, t_ns: u64) -> u64 {
        t_ns / self.bin_ns
    }

    /// Credits the busy interval `[start_ns, start_ns + dur_ns)` to a
    /// [`SeriesKind::Utilization`] series, split across the bins it
    /// overlaps. A zero-length interval records nothing.
    pub fn record_busy(&mut self, id: SeriesId, start_ns: u64, dur_ns: u64) {
        if dur_ns == 0 {
            return;
        }
        let bin_ns = self.bin_ns;
        let end_ns = start_ns + dur_ns;
        let series = &mut self.series[id.0];
        debug_assert_eq!(series.kind, SeriesKind::Utilization);
        let mut cursor = start_ns;
        while cursor < end_ns {
            let bin = cursor / bin_ns;
            let bin_end = (bin + 1) * bin_ns;
            let slice = end_ns.min(bin_end) - cursor;
            series.bins.entry(bin).or_default().sum += slice;
            cursor = bin_end;
        }
    }

    /// Records one gauge sample (`value` at sim-time `at_ns`) into a
    /// [`SeriesKind::Gauge`] series.
    pub fn sample(&mut self, id: SeriesId, at_ns: u64, value: u64) {
        let bin = self.bin_of(at_ns);
        let series = &mut self.series[id.0];
        debug_assert_eq!(series.kind, SeriesKind::Gauge);
        let acc = series.bins.entry(bin).or_default();
        acc.sum += value;
        acc.weight += 1;
        acc.max = acc.max.max(value);
    }

    /// Adds `num` successes out of `den` events at sim-time `at_ns` to a
    /// [`SeriesKind::Rate`] series. A zero `den` records nothing.
    pub fn record_rate(&mut self, id: SeriesId, at_ns: u64, num: u64, den: u64) {
        if den == 0 {
            return;
        }
        let bin = self.bin_of(at_ns);
        let series = &mut self.series[id.0];
        debug_assert_eq!(series.kind, SeriesKind::Rate);
        let acc = series.bins.entry(bin).or_default();
        acc.sum += num;
        acc.weight += den;
    }

    /// Folds `other` into `self`. Series sharing a name merge bin-wise
    /// (integer `+`/`max`, so merge order cannot matter); new names are
    /// adopted. Shard telemetry from disjoint resources therefore merges
    /// into the same set regardless of how work was sharded.
    ///
    /// # Panics
    ///
    /// Panics on mismatched bin widths or on a name registered with
    /// different kinds on the two sides.
    pub fn merge(&mut self, other: Telemetry) {
        assert_eq!(self.bin_ns, other.bin_ns, "telemetry bin widths differ");
        for (slot, series) in other.series.into_iter().enumerate() {
            let name = &other.names[slot];
            let id = self.register(name, series.kind);
            let mine = &mut self.series[id.0];
            for (bin, acc) in series.bins {
                mine.bins.entry(bin).or_default().absorb(acc);
            }
        }
    }

    /// Registered series names in canonical (lexicographic) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.index.keys().map(String::as_str)
    }

    /// The kind of series `name`, if registered.
    pub fn kind(&self, name: &str) -> Option<SeriesKind> {
        self.index.get(name).map(|&slot| self.series[slot].kind)
    }

    fn milli(&self, kind: SeriesKind, bin: &Bin) -> u64 {
        match kind {
            SeriesKind::Utilization => bin.sum * 1000 / self.bin_ns,
            SeriesKind::Gauge | SeriesKind::Rate => {
                (bin.sum * 1000).checked_div(bin.weight).unwrap_or(0)
            }
        }
    }

    /// The bins of series `name` in time order, with derived values.
    pub fn points(&self, name: &str) -> Option<Vec<SeriesPoint>> {
        let &slot = self.index.get(name)?;
        let series = &self.series[slot];
        Some(
            series
                .bins
                .iter()
                .map(|(&bin, acc)| SeriesPoint {
                    t_ns: bin * self.bin_ns,
                    sum: acc.sum,
                    weight: acc.weight,
                    max: acc.max,
                    milli: self.milli(series.kind, acc),
                })
                .collect(),
        )
    }

    /// The peak bin value of series `name`, in thousandths.
    pub fn peak_milli(&self, name: &str) -> Option<u64> {
        let points = self.points(name)?;
        points.iter().map(|p| p.milli).max()
    }

    /// The start of the first bin whose value reaches
    /// `threshold_milli`, or `None` if the series never does — the
    /// saturation-onset sim-time of a utilization series.
    pub fn onset_ns(&self, name: &str, threshold_milli: u64) -> Option<u64> {
        self.points(name)?
            .iter()
            .find(|p| p.milli >= threshold_milli)
            .map(|p| p.t_ns)
    }

    /// Total `(sum, weight)` over all bins of series `name`.
    pub fn totals(&self, name: &str) -> Option<(u64, u64)> {
        let &slot = self.index.get(name)?;
        let series = &self.series[slot];
        let sum = series.bins.values().map(|b| b.sum).sum();
        let weight = series.bins.values().map(|b| b.weight).sum();
        Some((sum, weight))
    }

    /// Renders every series as JSONL — one object per (series, bin) in
    /// canonical order. A pure function of the recorded bins: integer
    /// fields only, byte-identical for a fixed seed at any thread count.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, &slot) in &self.index {
            let series = &self.series[slot];
            for (&bin, acc) in &series.bins {
                out.push_str(&format!(
                    "{{\"series\":\"{}\",\"kind\":\"{}\",\"t_ns\":{},\"bin_ns\":{},\"sum\":{},\"weight\":{},\"max\":{},\"milli\":{}}}\n",
                    name,
                    series.kind.name(),
                    bin * self.bin_ns,
                    self.bin_ns,
                    acc.sum,
                    acc.weight,
                    acc.max,
                    self.milli(series.kind, acc),
                ));
            }
        }
        out
    }

    /// Renders every bin as a Chrome `trace_event` counter (`"ph":"C"`)
    /// object, one JSON object string per point, in canonical order.
    /// Embedded in a trace document these draw one Perfetto counter
    /// track per resource alongside the span swim-lanes.
    pub fn chrome_counter_events(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (name, &slot) in &self.index {
            let series = &self.series[slot];
            for (&bin, acc) in &series.bins {
                let t_ns = bin * self.bin_ns;
                let milli = self.milli(series.kind, acc);
                out.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{}.{:03},\"pid\":0,\"tid\":0,\"args\":{{\"value\":{}.{:03}}}}}",
                    name,
                    t_ns / 1_000,
                    t_ns % 1_000,
                    milli / 1000,
                    milli % 1000,
                ));
            }
        }
        out
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(DEFAULT_BIN_NS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Telemetry {
        Telemetry::new(1_000)
    }

    #[test]
    fn busy_intervals_split_across_bins() {
        let mut tel = t();
        let id = tel.register("gw.util", SeriesKind::Utilization);
        // 500 ns in bin 0, full bin 1, 250 ns in bin 2.
        tel.record_busy(id, 500, 1_750);
        let points = tel.points("gw.util").unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0], SeriesPoint { t_ns: 0, sum: 500, weight: 0, max: 0, milli: 500 });
        assert_eq!(points[1].milli, 1000);
        assert_eq!(points[2].sum, 250);
        assert_eq!(tel.peak_milli("gw.util"), Some(1000));
        assert_eq!(tel.onset_ns("gw.util", 900), Some(1_000));
        assert_eq!(tel.onset_ns("gw.util", 1001), None);
    }

    #[test]
    fn gauges_keep_mean_and_peak() {
        let mut tel = t();
        let id = tel.register("host.queue", SeriesKind::Gauge);
        tel.sample(id, 10, 2);
        tel.sample(id, 20, 6);
        tel.sample(id, 1_500, 1);
        let points = tel.points("host.queue").unwrap();
        assert_eq!(points[0].milli, 4_000, "mean of 2 and 6");
        assert_eq!(points[0].max, 6);
        assert_eq!(points[1].max, 1);
    }

    #[test]
    fn rates_divide_hits_by_lookups() {
        let mut tel = t();
        let id = tel.register("gw.cache", SeriesKind::Rate);
        tel.record_rate(id, 0, 1, 2);
        tel.record_rate(id, 10, 1, 1);
        tel.record_rate(id, 20, 0, 0); // no lookups: recorded nothing
        let points = tel.points("gw.cache").unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].milli, 666, "2 hits / 3 lookups");
    }

    #[test]
    fn merge_is_commutative_and_exports_in_name_order() {
        let mut a = t();
        let ida = a.register("b.util", SeriesKind::Utilization);
        a.record_busy(ida, 0, 400);
        let mut b = t();
        let idb = b.register("a.util", SeriesKind::Utilization);
        b.record_busy(idb, 100, 200);
        let idshared = b.register("b.util", SeriesKind::Utilization);
        b.record_busy(idshared, 0, 100);

        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b.clone();
        ba.merge(a.clone());
        assert_eq!(ab.to_jsonl(), ba.to_jsonl());
        assert_eq!(ab.chrome_counter_events(), ba.chrome_counter_events());
        let names: Vec<&str> = ab.names().collect();
        assert_eq!(names, ["a.util", "b.util"], "canonical name order");
        assert_eq!(ab.totals("b.util"), Some((500, 0)), "bins summed");
    }

    #[test]
    fn exports_are_stable_and_integer_formatted() {
        let mut tel = t();
        let id = tel.register("cell0000.airtime_util", SeriesKind::Utilization);
        tel.record_busy(id, 250, 500);
        assert_eq!(tel.to_jsonl(), tel.to_jsonl());
        let line = tel.to_jsonl();
        assert_eq!(
            line,
            "{\"series\":\"cell0000.airtime_util\",\"kind\":\"util\",\"t_ns\":0,\"bin_ns\":1000,\"sum\":500,\"weight\":0,\"max\":0,\"milli\":500}\n"
        );
        let counters = tel.chrome_counter_events();
        assert_eq!(counters.len(), 1);
        assert!(counters[0].contains("\"ph\":\"C\""), "{}", counters[0]);
        assert!(counters[0].contains("\"value\":0.500"), "{}", counters[0]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let mut tel = t();
        tel.register("x", SeriesKind::Gauge);
        tel.register("x", SeriesKind::Rate);
    }
}
