#![warn(missing_docs)]
//! # obs — deterministic observability for the mcommerce workspace
//!
//! The paper's central claim is structural: a mobile transaction
//! traverses six distinct components (application → station → middleware
//! → wireless → wired → host), and understanding an MC system means
//! attributing cost to each. This crate is the measurement layer that
//! makes the attribution observable at production scale:
//!
//! * [`hist`] — the log-linear histogram (32 sub-buckets per octave,
//!   ≤ 3% quantisation error) shared by every latency distribution in
//!   the workspace. Extracted from `mcommerce-core`'s report module so
//!   metrics and workload counters bucket identically.
//! * [`metrics`] — a thread-local registry of named counters and
//!   histograms each layer publishes into (packets dropped, RTO
//!   firings, transcode bytes, handoffs, …). Disabled by default: the
//!   hot-path cost of an unpublished metric is one thread-local flag
//!   check.
//! * [`span`] — the span taxonomy: the six paper layers and the
//!   sim-time trace event they annotate.
//! * [`recorder`] — the [`Recorder`] sink. `Recorder::Disabled` skips
//!   all recording at a single `match`; `Recorder::Ring` keeps a
//!   bounded flight-recorder ring buffer and dumps the current
//!   transaction's tail when it fails.
//! * [`timeseries`] — fixed sim-time-bin resource series (utilization,
//!   gauges, hit rates) that merge commutatively across shards, the
//!   time dimension behind the shared-world dashboards.
//! * [`export`] — JSONL and Chrome `trace_event` exporters
//!   (`chrome://tracing` / Perfetto), including `"ph":"C"` counter
//!   tracks derived from telemetry series.
//!
//! ## Determinism
//!
//! Nothing here reads a wall clock or an OS RNG. Every timestamp is
//! simulated nanoseconds supplied by the caller, every container is
//! ordered (`BTreeMap` / append-order `Vec`), and every exporter is a
//! pure function of the recorded events — so a fixed-seed run produces
//! a byte-identical trace at any thread count.

pub mod export;
pub mod hist;
pub mod metrics;
pub mod recorder;
pub mod span;
pub mod timeseries;

pub use hist::Histogram;
pub use metrics::Metrics;
pub use recorder::{FlightDump, Recorder, RingScratch};
pub use span::{EventKind, Layer, TraceEvent};
pub use timeseries::{SeriesId, SeriesKind, Telemetry};
