//! The span taxonomy: the paper's six layers and the trace events that
//! annotate them.
//!
//! Figure 2 decomposes a mobile commerce system into six components; a
//! transaction traverses them in order. Every recorded event carries the
//! [`Layer`] it happened in, so a trace (or a flight-recorder dump)
//! attributes latency and failure to a specific component rather than to
//! the transaction as a whole.

use std::borrow::Cow;
use std::fmt;

/// One of the six components of the paper's MC system model (Figure 2).
///
/// Ordered in traversal order; the discriminant doubles as the Chrome
/// trace `tid`, so Perfetto shows one swim-lane per layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// (i) the mobile application driving the session.
    Application = 1,
    /// (ii) the mobile station: request build, parse, render, battery.
    Station = 2,
    /// (iii) the mobile middleware: translation, encoding, proxying.
    Middleware = 3,
    /// (iv) the wireless network: air link, session setup, handoffs.
    Wireless = 4,
    /// (v) the wired network between middleware and host.
    Wired = 5,
    /// (vi) the host computer serving the application.
    Host = 6,
}

impl Layer {
    /// All six layers in traversal order.
    pub const ALL: [Layer; 6] = [
        Layer::Application,
        Layer::Station,
        Layer::Middleware,
        Layer::Wireless,
        Layer::Wired,
        Layer::Host,
    ];

    /// Stable lower-case name, used as the trace category.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Application => "application",
            Layer::Station => "station",
            Layer::Middleware => "middleware",
            Layer::Wireless => "wireless",
            Layer::Wired => "wired",
            Layer::Host => "host",
        }
    }

    /// The Chrome-trace thread id for this layer's swim-lane.
    pub fn tid(self) -> u32 {
        self as u32
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether an event covers an interval or marks an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span: `[at_ns, at_ns + dur_ns)`.
    Span,
    /// A point event (`dur_ns` is zero).
    Instant,
}

/// One recorded trace event, timestamped in simulated nanoseconds.
///
/// `user` and `txn` tie the event to the simulated user and the
/// transaction sequence number within that user's session, which is what
/// lets per-shard recorders merge into one canonical, thread-count-
/// independent trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time the event started, nanoseconds.
    pub at_ns: u64,
    /// Span duration in nanoseconds (zero for instants).
    pub dur_ns: u64,
    /// The component the event is attributed to.
    pub layer: Layer,
    /// Event name (`"uplink"`, `"render"`, `"rto"`, …). Almost every
    /// name on the hot path is a string literal, so this is a `Cow`:
    /// recording a static name copies a pointer instead of allocating,
    /// while dynamic names (failure reasons, URLs) still own their text.
    pub name: Cow<'static, str>,
    /// Span or instant.
    pub kind: EventKind,
    /// The simulated user the event belongs to.
    pub user: u64,
    /// Transaction sequence number within the user's world.
    pub txn: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layers_have_stable_names_and_tids() {
        assert_eq!(Layer::ALL.len(), 6);
        let mut seen = std::collections::BTreeSet::new();
        for layer in Layer::ALL {
            assert!(!layer.name().is_empty());
            assert!(seen.insert(layer.tid()), "duplicate tid for {layer}");
        }
        assert_eq!(Layer::Application.tid(), 1);
        assert_eq!(Layer::Host.tid(), 6);
    }
}
