//! Trace exporters: JSONL event logs and Chrome `trace_event` JSON.
//!
//! Both exporters are pure functions of the event slice: same events in,
//! byte-identical text out. Numbers are formatted from integers only
//! (nanoseconds split into microsecond + fractional parts), so there is
//! no floating-point formatting to drift across platforms.
//!
//! The Chrome format is the `trace_event` "JSON Object Format" consumed
//! by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): each
//! span is a complete (`"ph":"X"`) event, each instant an `"i"` event;
//! `pid` is the simulated user and `tid` the paper layer, so the UI
//! renders one process per user with six layer swim-lanes.

use crate::span::{EventKind, TraceEvent};
use crate::timeseries::Telemetry;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds rendered as fractional microseconds (`"1234.567"`),
/// the unit Chrome trace timestamps use. Integer-only formatting keeps
/// the output byte-stable.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders events as JSONL: one JSON object per line, in event order.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "{{\"at_ns\":{},\"dur_ns\":{},\"user\":{},\"txn\":{},\"layer\":\"{}\",\"name\":\"{}\",\"kind\":\"{}\"}}\n",
            e.at_ns,
            e.dur_ns,
            e.user,
            e.txn,
            e.layer.name(),
            escape(&e.name),
            match e.kind {
                EventKind::Span => "span",
                EventKind::Instant => "instant",
            },
        ));
    }
    out
}

/// Renders events as a Chrome `trace_event` JSON document.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    to_chrome_trace_with(events, None)
}

/// Renders events as a Chrome `trace_event` JSON document, appending
/// one `"ph":"C"` counter event per telemetry bin so Perfetto draws a
/// counter track per resource (gateway utilization, cache hit-rate, …)
/// alongside the span swim-lanes.
pub fn to_chrome_trace_with(events: &[TraceEvent], telemetry: Option<&Telemetry>) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match e.kind {
            EventKind::Span => out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"txn\":{}}}}}",
                escape(&e.name),
                e.layer.name(),
                micros(e.at_ns),
                micros(e.dur_ns),
                e.user,
                e.layer.tid(),
                e.txn,
            )),
            EventKind::Instant => out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"txn\":{}}}}}",
                escape(&e.name),
                e.layer.name(),
                micros(e.at_ns),
                e.user,
                e.layer.tid(),
                e.txn,
            )),
        }
    }
    if let Some(telemetry) = telemetry {
        for counter in telemetry.chrome_counter_events() {
            if !out.ends_with('[') {
                out.push(',');
            }
            out.push_str(&counter);
        }
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Layer;

    fn events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                at_ns: 1_234_567,
                dur_ns: 890,
                layer: Layer::Wireless,
                name: "uplink".into(),
                kind: EventKind::Span,
                user: 3,
                txn: 0,
            },
            TraceEvent {
                at_ns: 2_000_000,
                dur_ns: 0,
                layer: Layer::Host,
                name: "served \"x\"".into(),
                kind: EventKind::Instant,
                user: 3,
                txn: 0,
            },
        ]
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let jsonl = to_jsonl(&events());
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"layer\":\"wireless\""));
        assert!(jsonl.contains("\"kind\":\"instant\""));
        assert!(jsonl.contains("served \\\"x\\\""), "{jsonl}");
    }

    #[test]
    fn chrome_trace_is_balanced_json_with_micro_timestamps() {
        let json = to_chrome_trace(&events());
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"ts\":1234.567"), "{json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"pid\":3"));
        assert!(json.contains(&format!("\"tid\":{}", Layer::Wireless.tid())));
    }

    #[test]
    fn chrome_trace_embeds_counter_tracks() {
        use crate::timeseries::{SeriesKind, Telemetry};
        let mut tel = Telemetry::new(1_000_000);
        let id = tel.register("gateway0000.cpu_util", SeriesKind::Utilization);
        tel.record_busy(id, 0, 250_000);
        let json = to_chrome_trace_with(&events(), Some(&tel));
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"name\":\"gateway0000.cpu_util\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Counters also append cleanly to an empty span list.
        let bare = to_chrome_trace_with(&[], Some(&tel));
        assert!(bare.contains("\"ph\":\"C\"") && !bare.contains("[,"), "{bare}");
    }

    #[test]
    fn exporters_are_deterministic() {
        let evs = events();
        assert_eq!(to_jsonl(&evs), to_jsonl(&evs));
        assert_eq!(to_chrome_trace(&evs), to_chrome_trace(&evs));
        assert_eq!(to_chrome_trace(&[]), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
    }
}
