//! Log-linear histogram with bounded relative error.
//!
//! Values (nanoseconds, nanojoules, bytes — any `u64`) are bucketed into
//! 32 linear sub-buckets per power-of-two octave, so any recorded value
//! is reproducible from its bucket's lower bound within 1/32 ≈ 3%.
//! Buckets are integral counts in a `BTreeMap`, which makes
//! [`Histogram::merge`] exactly associative and commutative — the
//! property the fleet engine's thread-count-invariant summaries rest on.
//!
//! This module was extracted from `mcommerce-core`'s report aggregation
//! so the metrics registry and the workload counters share one bucketing
//! scheme; core re-exports it as `mcommerce_core::hist`.

use std::collections::BTreeMap;

/// Number of linear sub-buckets per power-of-two octave. 32 sub-buckets
/// bound the quantisation error of any recorded value by 1/32 ≈ 3%.
pub const SUB_BUCKETS: u64 = 32;

/// log2([`SUB_BUCKETS`]).
pub const SUB_BITS: u32 = 5;

/// Maps a value to its bucket index. Monotonic: `a <= b` implies
/// `bucket(a) <= bucket(b)`.
pub fn bucket(value: u64) -> u32 {
    if value < SUB_BUCKETS {
        return value as u32;
    }
    let exp = value.ilog2();
    let sub = (value >> (exp - SUB_BITS)) & (SUB_BUCKETS - 1);
    (exp - SUB_BITS + 1) * SUB_BUCKETS as u32 + sub as u32
}

/// The smallest value mapping to `bucket` — the round-trip lower bound.
/// For any `v`, `bucket_low(bucket(v)) <= v` and the gap is at most
/// `v / 32 + 1`.
pub fn bucket_low(bucket: u32) -> u64 {
    if bucket < SUB_BUCKETS as u32 {
        return bucket as u64;
    }
    let exp = bucket / SUB_BUCKETS as u32 + SUB_BITS - 1;
    let sub = (bucket % SUB_BUCKETS as u32) as u64;
    (1u64 << exp) | (sub << (exp - SUB_BITS))
}

/// A mergeable log-linear histogram: bucket index → count.
///
/// ```
/// use obs::Histogram;
/// let mut h = Histogram::default();
/// for v in [100, 200, 300, 400] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// let p50 = h.percentile(50.0);
/// assert!(p50 <= 200 && p50 >= 193); // lower bucket bound, within 3%
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, value: u64) {
        *self.buckets.entry(bucket(value)).or_default() += 1;
        self.count += 1;
    }

    /// Records `n` occurrences of one value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.buckets.entry(bucket(value)).or_default() += n;
        self.count += n;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds `other` into `self`. Associative and commutative: any
    /// grouping or ordering of merges over the same recordings yields
    /// bit-identical histograms.
    pub fn merge(&mut self, other: &Histogram) {
        for (k, v) in &other.buckets {
            *self.buckets.entry(*k).or_default() += v;
        }
        self.count += other.count;
    }

    /// Nearest-rank percentile, reported as the lower bound of the
    /// bucket the rank falls in — within 3% below the true percentile.
    /// Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&b, &c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_low(b);
            }
        }
        0
    }

    /// Iterates `(bucket_lower_bound, count)` in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&b, &c)| (bucket_low(b), c))
    }

    /// The raw `bucket index → count` map, for code that needs to merge
    /// by index without re-bucketing.
    pub fn raw_buckets(&self) -> &BTreeMap<u32, u64> {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic_and_tight() {
        let mut last = 0;
        for v in [0u64, 1, 31, 32, 33, 100, 1_000, 1_000_000, u32::MAX as u64] {
            let b = bucket(v);
            assert!(b >= last, "bucket order broke at {v}");
            last = b;
            let low = bucket_low(b);
            assert!(low <= v, "{low} > {v}");
            assert!(v as f64 - low as f64 <= v as f64 / 32.0 + 1.0);
        }
    }

    #[test]
    fn merge_is_grouping_invariant() {
        let values: Vec<u64> = (0..200).map(|i| i * 977 + 13).collect();
        let mut whole = Histogram::default();
        for &v in &values {
            whole.record(v);
        }
        let mut left = Histogram::default();
        let mut right = Histogram::default();
        for &v in &values[..77] {
            left.record(v);
        }
        for &v in &values[77..] {
            right.record(v);
        }
        left.merge(&right);
        assert_eq!(whole, left);
        assert_eq!(whole.count(), 200);
    }

    #[test]
    fn percentile_of_uniform_ramp_is_close() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v * 1_000);
        }
        let p90 = h.percentile(90.0);
        assert!(p90 <= 900_000, "{p90}");
        assert!(p90 as f64 >= 900_000.0 * (1.0 - 1.0 / 32.0), "{p90}");
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::default();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.iter().count(), 0);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record_n(12345, 7);
        a.record_n(99, 0);
        for _ in 0..7 {
            b.record(12345);
        }
        assert_eq!(a, b);
    }
}
