//! The flight recorder: a bounded ring buffer of trace events with
//! automatic failure dumps.
//!
//! The sink is an enum. [`Recorder::Disabled`] makes every record call a
//! single `match` on a fieldless variant — no buffer, no allocation, no
//! clock reads — so systems constructed without tracing pay nothing.
//! [`Recorder::Ring`] keeps the most recent events (evicting the oldest,
//! like an aircraft flight recorder) and, when a transaction fails,
//! captures that transaction's surviving events into a [`FlightDump`]
//! naming the layer the failure happened in.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::fmt;

use crate::span::{EventKind, Layer, TraceEvent};

/// Default ring capacity: enough for hundreds of transactions of
/// context while bounding memory per recorder.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// What the flight recorder preserved about one failed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// The simulated user whose transaction failed.
    pub user: u64,
    /// Transaction sequence number within the user's world.
    pub txn: u64,
    /// The failure description, verbatim from the failing layer.
    pub reason: String,
    /// The layer the transaction stalled or failed in.
    pub layer: Layer,
    /// The failing transaction's events still in the ring, oldest first.
    pub events: Vec<TraceEvent>,
}

impl fmt::Display for FlightDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "flight dump: user {} txn {} failed in [{}]: {}",
            self.user, self.txn, self.layer, self.reason
        )?;
        for e in &self.events {
            writeln!(
                f,
                "  {:>12} ns  {:<10} {} ({} ns)",
                e.at_ns,
                e.layer.name(),
                e.name,
                e.dur_ns
            )?;
        }
        Ok(())
    }
}

/// The ring-buffer state behind [`Recorder::Ring`].
#[derive(Debug, Clone, Default)]
pub struct RingRecorder {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    dumps: Vec<FlightDump>,
    user: u64,
}

/// The recording sink threaded through a system under observation.
#[derive(Debug, Clone, Default)]
pub enum Recorder {
    /// No recording: every call is a single cheap `match`.
    #[default]
    Disabled,
    /// Record into a bounded flight-recorder ring buffer.
    Ring(RingRecorder),
}

impl Recorder {
    /// A ring recorder of [`DEFAULT_RING_CAPACITY`] for `user`.
    pub fn ring_for_user(user: u64) -> Self {
        Self::ring_with_capacity(DEFAULT_RING_CAPACITY, user)
    }

    /// A ring recorder keeping at most `capacity` most-recent events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn ring_with_capacity(capacity: usize, user: u64) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Recorder::Ring(RingRecorder {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            dumps: Vec::new(),
            user,
        })
    }

    /// True when events are actually recorded. Callers building event
    /// names with `format!` should guard on this to keep the disabled
    /// path allocation-free.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(self, Recorder::Ring(_))
    }

    /// Records a complete span `[at_ns, at_ns + dur_ns)` in `layer`.
    ///
    /// Takes a `&'static str` name so the hot path never allocates —
    /// every per-transaction span name is a literal. Dynamic names go
    /// through [`Recorder::span_dyn`].
    #[inline]
    pub fn span(&mut self, at_ns: u64, dur_ns: u64, layer: Layer, name: &'static str, txn: u64) {
        let Recorder::Ring(ring) = self else { return };
        ring.push(TraceEvent {
            at_ns,
            dur_ns,
            layer,
            name: Cow::Borrowed(name),
            kind: EventKind::Span,
            user: ring.user,
            txn,
        });
    }

    /// Like [`Recorder::span`] for names built at runtime (URLs,
    /// reasons). The copy happens only when recording is enabled.
    #[inline]
    pub fn span_dyn(&mut self, at_ns: u64, dur_ns: u64, layer: Layer, name: &str, txn: u64) {
        let Recorder::Ring(ring) = self else { return };
        ring.push(TraceEvent {
            at_ns,
            dur_ns,
            layer,
            name: Cow::Owned(name.to_owned()),
            kind: EventKind::Span,
            user: ring.user,
            txn,
        });
    }

    /// Records a point event at `at_ns` in `layer` (static name; see
    /// [`Recorder::span`] for the rationale).
    #[inline]
    pub fn instant(&mut self, at_ns: u64, layer: Layer, name: &'static str, txn: u64) {
        let Recorder::Ring(ring) = self else { return };
        ring.push(TraceEvent {
            at_ns,
            dur_ns: 0,
            layer,
            name: Cow::Borrowed(name),
            kind: EventKind::Instant,
            user: ring.user,
            txn,
        });
    }

    /// Like [`Recorder::instant`] for names built at runtime. The copy
    /// happens only when recording is enabled.
    #[inline]
    pub fn instant_dyn(&mut self, at_ns: u64, layer: Layer, name: &str, txn: u64) {
        let Recorder::Ring(ring) = self else { return };
        ring.push(TraceEvent {
            at_ns,
            dur_ns: 0,
            layer,
            name: Cow::Owned(name.to_owned()),
            kind: EventKind::Instant,
            user: ring.user,
            txn,
        });
    }

    /// Captures transaction `txn`'s surviving ring events into a
    /// [`FlightDump`] attributing the failure to `layer`. Called by the
    /// system the moment a transaction fails.
    pub fn dump_failure(&mut self, txn: u64, reason: &str, layer: Layer) {
        let Recorder::Ring(ring) = self else { return };
        let events: Vec<TraceEvent> =
            ring.events.iter().filter(|e| e.txn == txn).cloned().collect();
        ring.dumps.push(FlightDump {
            user: ring.user,
            txn,
            reason: reason.to_owned(),
            layer,
            events,
        });
    }

    /// Appends an externally assembled dump (used by packet-level
    /// harnesses that derive the stalled layer themselves).
    pub fn push_dump(&mut self, dump: FlightDump) {
        if let Recorder::Ring(ring) = self {
            ring.dumps.push(dump);
        }
    }

    /// Number of events currently buffered (zero when disabled).
    pub fn len(&self) -> usize {
        match self {
            Recorder::Disabled => 0,
            Recorder::Ring(ring) => ring.events.len(),
        }
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the capacity bound so far.
    pub fn dropped(&self) -> u64 {
        match self {
            Recorder::Disabled => 0,
            Recorder::Ring(ring) => ring.dropped,
        }
    }

    /// Consumes the recorder, returning `(events oldest-first, dumps in
    /// failure order)`. Both are empty for [`Recorder::Disabled`].
    pub fn into_parts(self) -> (Vec<TraceEvent>, Vec<FlightDump>) {
        match self {
            Recorder::Disabled => (Vec::new(), Vec::new()),
            Recorder::Ring(ring) => (ring.events.into_iter().collect(), ring.dumps),
        }
    }

    /// A ring recorder for `user` built over `scratch`'s buffer, so a
    /// fleet shard pays the ring allocation once instead of once per
    /// user. Pair with [`Recorder::into_parts_recycling`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn ring_recycled(capacity: usize, user: u64, scratch: &mut RingScratch) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        let mut events = std::mem::take(&mut scratch.events);
        events.clear();
        Recorder::Ring(RingRecorder {
            events,
            capacity,
            dropped: 0,
            dumps: Vec::new(),
            user,
        })
    }

    /// Consumes the recorder like [`Recorder::into_parts`], returning
    /// the ring's grown buffer to `scratch` for the shard's next user.
    pub fn into_parts_recycling(self, scratch: &mut RingScratch) -> (Vec<TraceEvent>, Vec<FlightDump>) {
        match self {
            Recorder::Disabled => (Vec::new(), Vec::new()),
            Recorder::Ring(mut ring) => {
                let events: Vec<TraceEvent> = ring.events.drain(..).collect();
                scratch.events = ring.events;
                (events, ring.dumps)
            }
        }
    }
}

/// Reusable backing storage for per-user ring recorders.
///
/// A fleet shard traces thousands of users in sequence; rebuilding each
/// user's [`Recorder`] from a shared scratch keeps one ring buffer
/// alive for the whole shard instead of reallocating (and re-growing)
/// it per user.
#[derive(Debug, Default)]
pub struct RingScratch {
    events: VecDeque<TraceEvent>,
}

impl RingRecorder {
    fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::Disabled;
        r.span(0, 10, Layer::Wireless, "uplink", 0);
        r.instant(5, Layer::Host, "served", 0);
        r.dump_failure(0, "boom", Layer::Wireless);
        assert!(!r.is_enabled());
        assert!(r.is_empty());
        let (events, dumps) = r.into_parts();
        assert!(events.is_empty() && dumps.is_empty());
    }

    #[test]
    fn ring_keeps_most_recent_events() {
        let mut r = Recorder::ring_with_capacity(3, 7);
        for i in 0..5u64 {
            r.instant_dyn(i, Layer::Station, &format!("e{i}"), i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let (events, _) = r.into_parts();
        assert_eq!(events[0].name, "e2");
        assert_eq!(events[2].name, "e4");
        assert!(events.iter().all(|e| e.user == 7));
    }

    #[test]
    fn failure_dump_captures_only_the_failing_txn() {
        let mut r = Recorder::ring_for_user(3);
        r.span(0, 100, Layer::Station, "build", 0);
        r.span(100, 200, Layer::Wireless, "uplink", 0);
        r.span(1_000, 50, Layer::Station, "build", 1);
        r.span(1_050, 10, Layer::Wireless, "uplink", 1);
        r.dump_failure(1, "uplink failed (ARQ exhausted)", Layer::Wireless);
        let (_, dumps) = r.into_parts();
        assert_eq!(dumps.len(), 1);
        let d = &dumps[0];
        assert_eq!(d.layer, Layer::Wireless);
        assert_eq!(d.user, 3);
        assert_eq!(d.txn, 1);
        assert_eq!(d.events.len(), 2, "only txn 1's events");
        assert!(d.events.iter().all(|e| e.txn == 1));
        assert!(d.to_string().contains("failed in [wireless]"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Recorder::ring_with_capacity(0, 0);
    }

    #[test]
    fn recycled_rings_match_fresh_rings_and_reuse_the_buffer() {
        let mut scratch = RingScratch::default();
        let mut all = Vec::new();
        for user in 0..3u64 {
            let mut fresh = Recorder::ring_for_user(user);
            let mut recycled = Recorder::ring_recycled(DEFAULT_RING_CAPACITY, user, &mut scratch);
            for r in [&mut fresh, &mut recycled] {
                r.span(user * 10, 5, Layer::Wireless, "uplink", 0);
                r.instant(user * 10 + 5, Layer::Host, "served", 0);
            }
            let fresh_parts = fresh.into_parts();
            let recycled_parts = recycled.into_parts_recycling(&mut scratch);
            assert_eq!(fresh_parts, recycled_parts);
            all.push(recycled_parts);
        }
        assert!(all.iter().all(|(events, _)| events.len() == 2));
        assert!(scratch.events.capacity() >= 2, "buffer survives recycling");
    }
}
