//! Property tests for the log-linear histogram's documented error bound:
//! any recorded value round-trips through its bucket's lower bound
//! within 3% (1/32) below the true value — the resolution every latency
//! percentile in the workspace inherits.

use proptest::prelude::*;

use obs::hist::{bucket, bucket_low, Histogram};

proptest! {
    #[test]
    fn bucket_round_trip_error_is_within_three_percent(value in any::<u64>()) {
        let b = bucket(value);
        let low = bucket_low(b);
        prop_assert!(low <= value, "lower bound {low} above value {value}");
        // Documented bound: error <= value/32 (+1 for the integer floor).
        let error = value - low;
        prop_assert!(
            error <= value / 32 + 1,
            "error {error} exceeds 3% bound for {value} (bucket {b}, low {low})"
        );
    }

    #[test]
    fn bucketing_is_monotonic(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket(lo) <= bucket(hi));
    }

    #[test]
    fn bucket_low_is_a_fixed_point(value in any::<u64>()) {
        // The lower bound of a bucket buckets to the same bucket.
        let b = bucket(value);
        prop_assert_eq!(bucket(bucket_low(b)), b);
    }

    #[test]
    fn percentile_never_overshoots(mut values in proptest::collection::vec(1u64..u32::MAX as u64, 1..200)) {
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for p in [50.0f64, 90.0, 99.0] {
            let rank = ((p / 100.0) * values.len() as f64).ceil().max(1.0) as usize - 1;
            let truth = values[rank];
            let est = h.percentile(p);
            prop_assert!(est <= truth, "p{p}: estimate {est} above true {truth}");
            prop_assert!(
                est >= truth - truth / 32 - 1,
                "p{p}: estimate {est} more than 3% below true {truth}"
            );
        }
    }

    #[test]
    fn merge_equals_concatenation(
        xs in proptest::collection::vec(any::<u64>(), 0..100),
        ys in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut whole = Histogram::default();
        for &v in xs.iter().chain(&ys) {
            whole.record(v);
        }
        let mut left = Histogram::default();
        for &v in &xs {
            left.record(v);
        }
        let mut right = Histogram::default();
        for &v in &ys {
            right.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(whole, left);
    }
}
