//! Content translation — the WAP gateway's defining job, plus i-mode's
//! lighter simplification.
//!
//! §5.1: "responses are sent from the Web server to the WAP Gateway in
//! HTML and are then translated in WML and sent to the mobile stations."
//! [`html_to_wml`] is that translation: block structure becomes cards and
//! paragraphs, inline markup maps to WML's tiny vocabulary, tables
//! flatten into rows, images reduce to their alt text, and oversized
//! content paginates into linked cards so decks respect device limits.
//!
//! [`html_to_chtml`] is i-mode's version: *filtering*, not translation —
//! disallowed elements unwrap into their children, banned attributes drop,
//! scripts and styles disappear.

use crate::chtml::{CHTML_ATTRS, CHTML_TAGS};
use crate::dom::{Element, Node};
use crate::wml;

/// Options for [`html_to_wml`].
#[derive(Debug, Clone)]
pub struct WmlOptions {
    /// Target maximum serialised bytes per card; content beyond it starts
    /// a new card linked via a "More" anchor. (Real phones enforced deck
    /// limits of 1–8 KB.)
    pub max_card_bytes: usize,
    /// Hard cap on the serialised deck, if any: cards beyond it are
    /// dropped and replaced with a truncation notice — the adaptation a
    /// gateway applies when the device cannot hold the full content.
    pub max_deck_bytes: Option<usize>,
}

impl Default for WmlOptions {
    fn default() -> Self {
        WmlOptions {
            max_card_bytes: 1_400,
            max_deck_bytes: None,
        }
    }
}

/// Translates an HTML document into a WML deck.
///
/// The output always passes [`wml::validate`].
///
/// ```
/// let html = markup::html::page("Shop", vec![
///     markup::html::p("Welcome to the mobile shop").into(),
/// ]);
/// let deck = markup::transcode::html_to_wml(&html, &Default::default());
/// markup::wml::validate(&deck).unwrap();
/// assert!(deck.text_content().contains("Welcome"));
/// ```
pub fn html_to_wml(html: &Element, opts: &WmlOptions) -> Element {
    let title = html
        .find("title")
        .map(|t| t.text_content())
        .unwrap_or_else(|| "Untitled".to_owned());

    // Collect block-level paragraphs from the body (or the whole document
    // when there is no <body>).
    let scope = html.find("body").unwrap_or(html);
    let mut blocks: Vec<Element> = Vec::new();
    collect_blocks(scope, &mut blocks);
    if blocks.is_empty() {
        blocks.push(Element::new("p"));
    }

    // Paginate blocks into cards under the size budget.
    let mut deck = wml::deck();
    let mut card_index = 0usize;
    let mut current = wml::card("c0", &title);
    let mut current_bytes = 0usize;
    let mut finished: Vec<Element> = Vec::new();
    for block in blocks {
        let block_bytes = block.to_markup().len();
        if current_bytes > 0 && current_bytes + block_bytes > opts.max_card_bytes {
            card_index += 1;
            let next_id = format!("c{card_index}");
            current.push_child(
                Element::new("p").with_child(
                    Element::new("a")
                        .with_attr("href", format!("#{next_id}"))
                        .with_text("More"),
                ),
            );
            finished.push(std::mem::replace(&mut current, wml::card(&next_id, &title)));
            current_bytes = 0;
        }
        current_bytes += block_bytes;
        current.push_child(block);
    }
    finished.push(current);

    // Deck-size adaptation: keep whole cards while they fit, then replace
    // the remainder with a truncation card.
    if let Some(limit) = opts.max_deck_bytes {
        let mut kept: Vec<Element> = Vec::new();
        let mut used = wml::deck_bytes(&deck);
        let total = finished.len();
        for card in finished {
            let size = card.to_markup().len();
            if used + size > limit && !kept.is_empty() {
                let notice =
                    wml::card("truncated", "More").with_child(Element::new("p").with_text(
                        format!("content truncated: {} of {} cards shown", kept.len(), total),
                    ));
                kept.push(notice);
                break;
            }
            used += size;
            kept.push(card);
        }
        finished = kept;
    }

    for card in finished {
        deck.push_child(card);
    }
    deck
}

/// Collects translated block elements from an HTML subtree.
fn collect_blocks(scope: &Element, out: &mut Vec<Element>) {
    for child in scope.children() {
        match child {
            Node::Text(t) => {
                if !t.trim().is_empty() {
                    out.push(Element::new("p").with_text(t.clone()));
                }
            }
            Node::Element(e) => match e.tag() {
                "script" | "style" => {}
                "p" | "div" | "blockquote" | "pre" | "center" => {
                    let mut p = Element::new("p");
                    translate_inline(e, &mut p);
                    if !p.children().is_empty() {
                        out.push(p);
                    }
                }
                "h1" | "h2" | "h3" | "h4" | "h5" | "h6" => {
                    let mut b = Element::new("b");
                    translate_inline(e, &mut b);
                    out.push(Element::new("p").with_child(Element::new("big").with_child(b)));
                }
                "ul" | "ol" => {
                    for (i, li) in e.find_all("li").enumerate() {
                        let mut p = Element::new("p");
                        p.push_child(Node::text(format!("{}. ", i + 1)));
                        translate_inline(li, &mut p);
                        out.push(p);
                    }
                }
                "table" => {
                    for tr in e.find_all("tr") {
                        let cells: Vec<String> = tr
                            .find_all("td")
                            .chain(tr.find_all("th"))
                            .map(|td| td.text_content())
                            .collect();
                        out.push(Element::new("p").with_text(cells.join(" | ")));
                    }
                }
                "form" => {
                    let mut p = Element::new("p");
                    for input in e.find_all("input") {
                        if input.attr("type") == Some("submit") {
                            continue;
                        }
                        let mut field = Element::new("input");
                        if let Some(name) = input.attr("name") {
                            field.set_attr("name", name);
                        }
                        p.push_child(field);
                    }
                    let action = e.attr("action").unwrap_or("/");
                    p.push_child(
                        Element::new("do")
                            .with_attr("type", "accept")
                            .with_child(Element::new("go").with_attr("href", action)),
                    );
                    out.push(p);
                }
                // Inline elements sitting at block level get their own
                // paragraph so links/emphasis are not lost.
                "a" | "b" | "strong" | "i" | "em" | "br" | "img" | "span" | "font" | "big"
                | "small" => {
                    let wrapper = Element::new("span").with_child(e.clone());
                    let mut p = Element::new("p");
                    translate_inline(&wrapper, &mut p);
                    if !p.children().is_empty() {
                        out.push(p);
                    }
                }
                // Containers without block meaning: recurse.
                _ => collect_blocks(e, out),
            },
        }
    }
}

/// Translates inline HTML content into WML inline content inside `out`.
fn translate_inline(e: &Element, out: &mut Element) {
    for child in e.children() {
        match child {
            Node::Text(t) => out.push_child(Node::text(t.clone())),
            Node::Element(inner) => match inner.tag() {
                "script" | "style" => {}
                "b" | "strong" => {
                    let mut b = Element::new("b");
                    translate_inline(inner, &mut b);
                    out.push_child(b);
                }
                "i" | "em" => {
                    let mut i = Element::new("i");
                    translate_inline(inner, &mut i);
                    out.push_child(i);
                }
                "a" => {
                    let mut a = Element::new("a");
                    if let Some(href) = inner.attr("href") {
                        a.set_attr("href", href);
                    }
                    translate_inline(inner, &mut a);
                    out.push_child(a);
                }
                "br" => out.push_child(Element::new("br")),
                "img" => {
                    // Images become their alt text in brackets.
                    let alt = inner.attr("alt").unwrap_or("image");
                    out.push_child(Node::text(format!("[{alt}]")));
                }
                _ => translate_inline(inner, out),
            },
        }
    }
}

/// Simplifies HTML into valid cHTML by filtering.
///
/// Disallowed elements are unwrapped (children survive); `<script>` and
/// `<style>` are removed entirely; non-cHTML attributes are stripped.
/// The output always passes [`crate::chtml::validate`].
pub fn html_to_chtml(html: &Element) -> Element {
    fn filter_element(e: &Element) -> Option<Element> {
        match e.tag() {
            "script" | "style" => return None,
            _ => {}
        }
        let mut out = Element::new(e.tag_owned());
        for (k, v) in e.attrs() {
            if CHTML_ATTRS.contains(&k.as_ref()) {
                out.set_attr(k.clone(), v.clone());
            }
        }
        for child in e.children() {
            match child {
                Node::Text(t) => out.push_child(Node::text(t.clone())),
                Node::Element(inner) => {
                    if CHTML_TAGS.contains(&inner.tag()) {
                        if let Some(filtered) = filter_element(inner) {
                            out.push_child(filtered);
                        }
                    } else if inner.tag() != "script" && inner.tag() != "style" {
                        // Unwrap: splice the child's (filtered) children in.
                        if let Some(filtered) = filter_element(inner) {
                            for grand in filtered.children() {
                                out.push_child(grand.clone());
                            }
                        }
                    }
                }
            }
        }
        Some(out)
    }
    filter_element(html).unwrap_or_else(|| Element::new("html"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html;

    fn rich_page() -> Element {
        html::page(
            "Mobile Shop",
            vec![
                html::h1("Catalog").into(),
                html::p("Fresh arrivals daily").into(),
                Element::new("p")
                    .with_text("See ")
                    .with_child(html::a("/deals", "deals"))
                    .with_child(
                        Element::new("img")
                            .with_attr("src", "x.png")
                            .with_attr("alt", "sale"),
                    )
                    .into(),
                html::table([("widget", "$5"), ("gadget", "$9")]).into(),
                html::ul(["fast", "cheap"]).into(),
                html::form("/order", "sku", "Order").into(),
                Element::new("script").with_text("alert(1)").into(),
            ],
        )
    }

    #[test]
    fn wml_output_is_valid_and_preserves_text() {
        let deck = html_to_wml(&rich_page(), &WmlOptions::default());
        wml::validate(&deck).unwrap();
        let text = deck.text_content();
        assert!(text.contains("Catalog"));
        assert!(text.contains("Fresh arrivals daily"));
        assert!(text.contains("deals"));
        assert!(text.contains("widget | $5"));
        assert!(text.contains("1. fast"));
        assert!(text.contains("[sale]")); // image → alt text
        assert!(!text.contains("alert")); // scripts dropped
    }

    #[test]
    fn links_and_forms_survive_translation() {
        let deck = html_to_wml(&rich_page(), &WmlOptions::default());
        let a = deck.find("a").expect("anchor survives");
        assert_eq!(a.attr("href"), Some("/deals"));
        let go = deck.find("go").expect("form becomes do/go");
        assert_eq!(go.attr("href"), Some("/order"));
        assert!(deck.find("input").is_some());
    }

    #[test]
    fn oversized_content_paginates_into_linked_cards() {
        let paragraphs: Vec<Node> = (0..40)
            .map(|i| html::p(&format!("Paragraph number {i} with some filler text in it")).into())
            .collect();
        let page = html::page("Long", paragraphs);
        let deck = html_to_wml(
            &page,
            &WmlOptions {
                max_card_bytes: 600,
                ..Default::default()
            },
        );
        wml::validate(&deck).unwrap();
        let ids = wml::card_ids(&deck);
        assert!(
            ids.len() > 2,
            "expected pagination, got {} cards",
            ids.len()
        );
        // Every card except the last links onward.
        let cards: Vec<&Element> = deck
            .children()
            .iter()
            .filter_map(|c| c.as_element())
            .collect();
        for (i, card) in cards.iter().enumerate() {
            let has_more = card
                .find_all("a")
                .any(|a| a.attr("href") == Some(&format!("#c{}", i + 1)));
            if i + 1 < cards.len() {
                assert!(has_more, "card {i} must link to card {}", i + 1);
            }
        }
        // All original text survives across cards.
        for i in 0..40 {
            assert!(deck
                .text_content()
                .contains(&format!("Paragraph number {i} ")));
        }
    }

    #[test]
    fn heading_becomes_big_bold() {
        let deck = html_to_wml(
            &html::page("t", vec![html::h1("Top").into()]),
            &Default::default(),
        );
        let big = deck.find("big").expect("heading maps to big");
        assert_eq!(big.text_content(), "Top");
        assert!(big.find("b").is_some());
    }

    #[test]
    fn chtml_simplification_is_valid_and_preserves_text() {
        let out = html_to_chtml(&rich_page());
        crate::chtml::validate(&out).unwrap();
        let text = out.text_content();
        assert!(text.contains("Catalog"));
        assert!(text.contains("widget"));
        assert!(text.contains("$5")); // table unwrapped but text kept
        assert!(!text.contains("alert(1)")); // script gone
        assert!(out.find("table").is_none());
        assert!(out.find("a").unwrap().attr("href") == Some("/deals"));
    }

    #[test]
    fn chtml_strips_disallowed_attributes() {
        let page = html::page(
            "t",
            vec![Element::new("p")
                .with_attr("style", "x")
                .with_attr("class", "y")
                .with_text("hi")
                .into()],
        );
        let out = html_to_chtml(&page);
        let p = out.find("p").unwrap();
        assert!(p.attrs().is_empty());
        assert_eq!(p.text_content(), "hi");
    }

    #[test]
    fn empty_body_still_produces_a_valid_deck() {
        let deck = html_to_wml(&html::page("e", vec![]), &Default::default());
        wml::validate(&deck).unwrap();
        assert_eq!(wml::card_ids(&deck).len(), 1);
    }
}
