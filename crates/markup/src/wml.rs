//! WML — the Wireless Markup Language WAP serves (Table 3, "Host
//! Language: WML").
//!
//! A WML document is a *deck* of *cards*; the microbrowser displays one
//! card at a time, which is how WAP fits hypertext onto a four-line phone
//! screen. This module defines the vocabulary, deck/card builders and a
//! validator the gateway and the microbrowser both use.

use std::fmt;

use crate::dom::{Element, Node};

/// Tags allowed in our WML subset.
pub const WML_TAGS: [&str; 14] = [
    "wml", "card", "p", "br", "a", "b", "i", "big", "small", "input", "do", "go", "select",
    "option",
];

/// Error produced by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateWmlError {
    /// What is wrong with the document.
    pub message: String,
}

impl fmt::Display for ValidateWmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid WML: {}", self.message)
    }
}

impl std::error::Error for ValidateWmlError {}

/// Checks that `doc` is a structurally valid WML deck: root `<wml>`,
/// every child a `<card>` with a unique `id`, and only known tags inside.
///
/// # Errors
///
/// Returns [`ValidateWmlError`] describing the first violation found.
pub fn validate(doc: &Element) -> Result<(), ValidateWmlError> {
    let err = |m: String| Err(ValidateWmlError { message: m });
    if doc.tag() != "wml" {
        return err(format!("root must be <wml>, found <{}>", doc.tag()));
    }
    let mut ids = std::collections::HashSet::new();
    for child in doc.children() {
        let Node::Element(card) = child else {
            return err("deck may contain only <card> children".into());
        };
        if card.tag() != "card" {
            return err(format!("deck child must be <card>, found <{}>", card.tag()));
        }
        let Some(id) = card.attr("id") else {
            return err("every card needs an id".into());
        };
        if !ids.insert(id.to_owned()) {
            return err(format!("duplicate card id {id:?}"));
        }
    }
    for e in doc.descendants() {
        if !WML_TAGS.contains(&e.tag()) {
            return err(format!("tag <{}> is not WML", e.tag()));
        }
    }
    Ok(())
}

/// Builds an empty deck.
pub fn deck() -> Element {
    Element::new("wml")
}

/// Builds a card with the given id and title.
pub fn card(id: &str, title: &str) -> Element {
    Element::new("card")
        .with_attr("id", id)
        .with_attr("title", title)
}

/// The serialised (textual) size of a deck in bytes — what a deck-size
/// limit on a constrained device is measured against.
pub fn deck_bytes(doc: &Element) -> usize {
    doc.to_markup().len()
}

/// The ids of the cards in a deck, in order.
pub fn card_ids(doc: &Element) -> Vec<String> {
    doc.children()
        .iter()
        .filter_map(|c| c.as_element())
        .filter(|e| e.tag() == "card")
        .filter_map(|e| e.attr("id").map(str::to_owned))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_deck() -> Element {
        deck()
            .with_child(
                card("home", "Shop")
                    .with_child(Element::new("p").with_text("Welcome"))
                    .with_child(
                        Element::new("p").with_child(
                            Element::new("a")
                                .with_attr("href", "#cart")
                                .with_text("Cart"),
                        ),
                    ),
            )
            .with_child(card("cart", "Cart").with_child(Element::new("p").with_text("Empty")))
    }

    #[test]
    fn valid_deck_passes() {
        validate(&valid_deck()).unwrap();
        assert_eq!(card_ids(&valid_deck()), vec!["home", "cart"]);
    }

    #[test]
    fn wrong_root_fails() {
        let doc = Element::new("html");
        assert!(validate(&doc)
            .unwrap_err()
            .message
            .contains("root must be <wml>"));
    }

    #[test]
    fn non_card_child_fails() {
        let doc = deck().with_child(Element::new("p"));
        assert!(validate(&doc)
            .unwrap_err()
            .message
            .contains("must be <card>"));
    }

    #[test]
    fn missing_or_duplicate_ids_fail() {
        let doc = deck().with_child(Element::new("card"));
        assert!(validate(&doc).unwrap_err().message.contains("needs an id"));
        let doc = deck().with_child(card("x", "")).with_child(card("x", ""));
        assert!(validate(&doc)
            .unwrap_err()
            .message
            .contains("duplicate card id"));
    }

    #[test]
    fn foreign_tags_fail() {
        let doc = deck().with_child(card("c", "").with_child(Element::new("table")));
        assert!(validate(&doc)
            .unwrap_err()
            .message
            .contains("<table> is not WML"));
    }

    #[test]
    fn deck_bytes_matches_serialisation() {
        let d = valid_deck();
        assert_eq!(deck_bytes(&d), d.to_markup().len());
        assert!(deck_bytes(&d) > 50);
    }

    #[test]
    fn wml_parses_back_through_generic_parser() {
        let d = valid_deck();
        let reparsed = crate::parse::parse(&d.to_markup()).unwrap();
        assert_eq!(d, reparsed);
        validate(&reparsed).unwrap();
    }
}
