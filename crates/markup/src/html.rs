//! HTML: what the host computers' web servers produce.
//!
//! §7: the web server "manages the Web pages stored on the Web site's
//! database" and responds in HTML; the WAP gateway then translates to WML
//! (§5.1). This module provides the HTML parse entry point plus page
//! builders used by the `hostsite` application programs.

use crate::dom::{Element, Node};
use crate::parse::{self, ParseMarkupError};

/// Parses an HTML document (well-formed subset; see [`crate::parse`]).
///
/// # Errors
///
/// Returns [`ParseMarkupError`] on malformed markup.
pub fn parse_html(input: &str) -> Result<Element, ParseMarkupError> {
    parse::parse(input)
}

/// Builds a minimal well-formed page: `<html><head><title>…</title></head>
/// <body>…</body></html>`.
///
/// ```
/// use markup::{html, Element, Node};
/// let page = html::page("Cart", vec![
///     Element::new("p").with_text("2 items").into(),
/// ]);
/// assert_eq!(page.find("title").unwrap().text_content(), "Cart");
/// ```
pub fn page(title: &str, body_children: Vec<Node>) -> Element {
    let mut body = Element::new("body");
    for child in body_children {
        body.push_child(child);
    }
    Element::new("html")
        .with_child(Element::new("head").with_child(Element::new("title").with_text(title)))
        .with_child(body)
}

/// A heading element.
pub fn h1(text: &str) -> Element {
    Element::new("h1").with_text(text)
}

/// A paragraph element.
pub fn p(text: &str) -> Element {
    Element::new("p").with_text(text)
}

/// An anchor element.
pub fn a(href: &str, text: &str) -> Element {
    Element::new("a").with_attr("href", href).with_text(text)
}

/// An unordered list of text items.
pub fn ul<I: IntoIterator<Item = S>, S: Into<String>>(items: I) -> Element {
    let mut list = Element::new("ul");
    for item in items {
        list.push_child(Element::new("li").with_text(item));
    }
    list
}

/// A two-column table from `(key, value)` rows.
pub fn table<'a>(rows: impl IntoIterator<Item = (&'a str, &'a str)>) -> Element {
    let mut table = Element::new("table");
    for (k, v) in rows {
        table.push_child(
            Element::new("tr")
                .with_child(Element::new("td").with_text(k))
                .with_child(Element::new("td").with_text(v)),
        );
    }
    table
}

/// A single-field form posting to `action`.
pub fn form(action: &str, field_name: &str, submit_label: &str) -> Element {
    Element::new("form")
        .with_attr("action", action)
        .with_attr("method", "post")
        .with_child(
            Element::new("input")
                .with_attr("type", "text")
                .with_attr("name", field_name),
        )
        .with_child(
            Element::new("input")
                .with_attr("type", "submit")
                .with_attr("value", submit_label),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_has_canonical_shape() {
        let doc = page("Store", vec![p("welcome").into(), a("/buy", "buy").into()]);
        assert_eq!(doc.tag(), "html");
        let tags: Vec<&str> = doc
            .children()
            .iter()
            .filter_map(|c| c.as_element())
            .map(|e| e.tag())
            .collect();
        assert_eq!(tags, vec!["head", "body"]);
        assert!(doc.to_markup().contains("<title>Store</title>"));
    }

    #[test]
    fn page_round_trips_through_the_parser() {
        let doc = page(
            "Inventory",
            vec![
                h1("Items").into(),
                ul(["widget", "gadget"]).into(),
                table([("sku", "42"), ("qty", "7")]).into(),
                form("/track", "sku", "Track").into(),
            ],
        );
        let reparsed = parse_html(&doc.to_markup()).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn helpers_produce_expected_markup() {
        assert_eq!(p("x").to_markup(), "<p>x</p>");
        assert_eq!(a("/c", "go").to_markup(), r#"<a href="/c">go</a>"#);
        assert_eq!(ul(["i"]).to_markup(), "<ul><li>i</li></ul>");
        assert!(form("/a", "q", "Go")
            .to_markup()
            .contains(r#"type="submit""#));
    }
}
