#![warn(missing_docs)]
//! # markup — HTML, WML and cHTML engines
//!
//! The paper's middleware comparison (Table 3) hinges on *host languages*:
//! WAP serves **WML** (Wireless Markup Language) produced by gateway
//! translation from HTML, while i-mode serves **cHTML** (Compact HTML)
//! directly. This crate supplies the machinery both middlewares need:
//!
//! * [`dom`] — a single element/text tree shared by all three languages,
//! * [`parse`] — a strict, well-formed-subset parser with HTML void-element
//!   and entity handling,
//! * [`html`], [`wml`], [`chtml`] — per-language vocabularies, validation
//!   and convenience builders,
//! * [`transcode`] — the WAP gateway's HTML→WML translation ("responses
//!   are sent from the Web server to the WAP Gateway in HTML and are then
//!   translated in WML", §5.1) with deck pagination, plus HTML→cHTML
//!   simplification for i-mode,
//! * [`wbxml`] — a WBXML-style tokenised binary encoding of WML, the
//!   over-the-air compression that makes gateway translation pay off on
//!   narrow wireless links.

pub mod chtml;
pub mod dom;
pub mod html;
pub mod parse;
pub mod transcode;
pub mod wbxml;
pub mod wml;

pub use dom::{Element, Node};
pub use parse::ParseMarkupError;
