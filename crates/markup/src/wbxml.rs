//! WBXML-style binary encoding of WML decks.
//!
//! WAP does not ship textual WML over the air: the gateway tokenises it
//! into WBXML, shrinking every known tag and attribute name to one byte.
//! That compression is a big part of why gateway translation wins on
//! narrow links (Table 3's trade-off), so the encoding is implemented for
//! real here. Token values are local to this implementation (stable, but
//! not the WAP Forum's registry values).
//!
//! Format:
//!
//! ```text
//! header:  version(0x03) publicid(0x01) charset(0x6A = UTF-8)
//! element: TAG byte            — bits: 0x80 = has attributes,
//!                                       0x40 = has content
//!          [attributes… END]    (if 0x80)
//!          [content…   END]     (if 0x40)
//! attr:    ATTR byte (or LITERAL + inline name) then STR_I value
//! text:    STR_I utf8-bytes 0x00
//! unknown: LITERAL + inline name
//! ```

use std::fmt;

use crate::dom::{Element, Node};

const VERSION: u8 = 0x03;
const PUBLIC_ID: u8 = 0x01;
const CHARSET_UTF8: u8 = 0x6A;

const END: u8 = 0x01;
const STR_I: u8 = 0x03;
const LITERAL: u8 = 0x04;

const FLAG_ATTRS: u8 = 0x80;
const FLAG_CONTENT: u8 = 0x40;
const TOKEN_MASK: u8 = 0x3F;

/// `(tag, token)` table. Tokens live in `0x05..=0x3F` after masking.
const TAG_TOKENS: [(&str, u8); 14] = [
    ("wml", 0x05),
    ("card", 0x06),
    ("p", 0x07),
    ("br", 0x08),
    ("a", 0x09),
    ("b", 0x0A),
    ("i", 0x0B),
    ("big", 0x0C),
    ("small", 0x0D),
    ("input", 0x0E),
    ("do", 0x0F),
    ("go", 0x10),
    ("select", 0x11),
    ("option", 0x12),
];

/// `(attribute, token)` table.
const ATTR_TOKENS: [(&str, u8); 8] = [
    ("id", 0x05),
    ("title", 0x06),
    ("href", 0x07),
    ("name", 0x08),
    ("value", 0x09),
    ("type", 0x0A),
    ("label", 0x0B),
    ("method", 0x0C),
];

fn tag_token(tag: &str) -> Option<u8> {
    TAG_TOKENS.iter().find(|(t, _)| *t == tag).map(|&(_, v)| v)
}

fn tag_for_token(token: u8) -> Option<&'static str> {
    TAG_TOKENS
        .iter()
        .find(|&&(_, v)| v == token)
        .map(|&(t, _)| t)
}

fn attr_token(name: &str) -> Option<u8> {
    ATTR_TOKENS
        .iter()
        .find(|(t, _)| *t == name)
        .map(|&(_, v)| v)
}

fn attr_for_token(token: u8) -> Option<&'static str> {
    ATTR_TOKENS
        .iter()
        .find(|&&(_, v)| v == token)
        .map(|&(t, _)| t)
}

/// Error produced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeWbxmlError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DecodeWbxmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WBXML decode error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for DecodeWbxmlError {}

/// Encodes an element tree (typically a WML deck) to binary.
///
/// ```
/// use markup::{wml, wbxml, Element};
/// let deck = wml::deck().with_child(
///     wml::card("home", "Hi").with_child(Element::new("p").with_text("Hello")),
/// );
/// let binary = wbxml::encode(&deck);
/// assert!(binary.len() < deck.to_markup().len());
/// assert_eq!(wbxml::decode(&binary)?, deck);
/// # Ok::<(), markup::wbxml::DecodeWbxmlError>(())
/// ```
pub fn encode(doc: &Element) -> Vec<u8> {
    let mut out = vec![VERSION, PUBLIC_ID, CHARSET_UTF8];
    encode_element(doc, &mut out);
    out
}

fn encode_element(e: &Element, out: &mut Vec<u8>) {
    let has_attrs = !e.attrs().is_empty();
    let has_content = !e.children().is_empty();
    let mut flags = 0u8;
    if has_attrs {
        flags |= FLAG_ATTRS;
    }
    if has_content {
        flags |= FLAG_CONTENT;
    }
    match tag_token(e.tag()) {
        Some(token) => out.push(token | flags),
        None => {
            out.push(LITERAL | flags);
            push_str(e.tag(), out);
        }
    }
    if has_attrs {
        for (name, value) in e.attrs() {
            match attr_token(name) {
                Some(token) => out.push(token),
                None => {
                    out.push(LITERAL);
                    push_str(name, out);
                }
            }
            out.push(STR_I);
            push_str(value, out);
        }
        out.push(END);
    }
    if has_content {
        for child in e.children() {
            match child {
                Node::Text(t) => {
                    out.push(STR_I);
                    push_str(t, out);
                }
                Node::Element(inner) => encode_element(inner, out),
            }
        }
        out.push(END);
    }
}

fn push_str(s: &str, out: &mut Vec<u8>) {
    debug_assert!(
        !s.as_bytes().contains(&0),
        "inline strings are NUL-terminated"
    );
    out.extend_from_slice(s.as_bytes());
    out.push(0);
}

/// Decodes binary WBXML back into an element tree.
///
/// # Errors
///
/// Returns [`DecodeWbxmlError`] on truncated input, bad headers or
/// unknown tokens.
pub fn decode(data: &[u8]) -> Result<Element, DecodeWbxmlError> {
    let mut d = Decoder { data, pos: 0 };
    d.expect(VERSION, "version")?;
    d.expect(PUBLIC_ID, "public id")?;
    d.expect(CHARSET_UTF8, "charset")?;
    let root = d.decode_element()?;
    if d.pos != d.data.len() {
        return Err(d.err("trailing bytes after document"));
    }
    Ok(root)
}

struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn err(&self, message: impl Into<String>) -> DecodeWbxmlError {
        DecodeWbxmlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn byte(&mut self) -> Result<u8, DecodeWbxmlError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn peek(&self) -> Option<u8> {
        self.data.get(self.pos).copied()
    }

    fn expect(&mut self, want: u8, what: &str) -> Result<(), DecodeWbxmlError> {
        let got = self.byte()?;
        if got != want {
            return Err(self.err(format!("bad {what}: {got:#04x}, expected {want:#04x}")));
        }
        Ok(())
    }

    fn read_str(&mut self) -> Result<String, DecodeWbxmlError> {
        let start = self.pos;
        while self.peek().ok_or_else(|| self.err("unterminated string"))? != 0 {
            self.pos += 1;
        }
        let s = String::from_utf8(self.data[start..self.pos].to_vec())
            .map_err(|_| self.err("invalid UTF-8 in string"))?;
        self.pos += 1; // NUL
        Ok(s)
    }

    fn decode_element(&mut self) -> Result<Element, DecodeWbxmlError> {
        let b = self.byte()?;
        let flags = b & (FLAG_ATTRS | FLAG_CONTENT);
        let token = b & TOKEN_MASK;
        let mut element = if token == LITERAL {
            Element::new(self.read_str()?)
        } else {
            let tag = tag_for_token(token)
                .ok_or_else(|| self.err(format!("unknown tag token {token:#04x}")))?;
            Element::new(tag)
        };

        if flags & FLAG_ATTRS != 0 {
            loop {
                let b = self.byte()?;
                if b == END {
                    break;
                }
                let name = if b == LITERAL {
                    self.read_str()?
                } else {
                    attr_for_token(b)
                        .ok_or_else(|| self.err(format!("unknown attr token {b:#04x}")))?
                        .to_owned()
                };
                self.expect(STR_I, "attribute value marker")?;
                let value = self.read_str()?;
                element.set_attr(name, value);
            }
        }

        if flags & FLAG_CONTENT != 0 {
            loop {
                match self.peek().ok_or_else(|| self.err("eof inside content"))? {
                    END => {
                        self.pos += 1;
                        break;
                    }
                    STR_I => {
                        self.pos += 1;
                        let text = self.read_str()?;
                        element.push_child(Node::text(text));
                    }
                    _ => {
                        let child = self.decode_element()?;
                        element.push_child(child);
                    }
                }
            }
        }
        Ok(element)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transcode::{html_to_wml, WmlOptions};
    use crate::{html, wml};

    fn sample_deck() -> Element {
        wml::deck()
            .with_child(
                wml::card("home", "Shop")
                    .with_child(Element::new("p").with_text("Welcome to the shop"))
                    .with_child(
                        Element::new("p").with_child(
                            Element::new("a")
                                .with_attr("href", "#cart")
                                .with_text("View cart"),
                        ),
                    ),
            )
            .with_child(wml::card("cart", "Cart").with_child(Element::new("p").with_text("Empty")))
    }

    #[test]
    fn round_trip_preserves_the_tree() {
        let deck = sample_deck();
        let binary = encode(&deck);
        let back = decode(&binary).unwrap();
        assert_eq!(deck, back);
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let deck = sample_deck();
        let text_len = deck.to_markup().len();
        let bin_len = encode(&deck).len();
        assert!(
            (bin_len as f64) < 0.8 * text_len as f64,
            "binary {bin_len} vs text {text_len}"
        );
    }

    #[test]
    fn translated_pages_round_trip() {
        let page = html::page(
            "Catalog",
            vec![
                html::h1("Items").into(),
                html::p("Things to buy").into(),
                html::a("/buy?id=1", "first item").into(),
            ],
        );
        let deck = html_to_wml(&page, &WmlOptions::default());
        let back = decode(&encode(&deck)).unwrap();
        assert_eq!(deck, back);
        wml::validate(&back).unwrap();
    }

    #[test]
    fn unknown_tags_and_attrs_use_literals() {
        let doc = Element::new("custom")
            .with_attr("data-x", "1")
            .with_child(Element::new("p").with_text("hi"));
        let back = decode(&encode(&doc)).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[0x99, 0x01, 0x6A]).is_err()); // bad version
        assert!(decode(&[VERSION, PUBLIC_ID, CHARSET_UTF8]).is_err()); // no root
                                                                       // Truncated content.
        let deck = sample_deck();
        let mut binary = encode(&deck);
        binary.truncate(binary.len() - 3);
        assert!(decode(&binary).is_err());
        // Trailing junk.
        let mut binary = encode(&deck);
        binary.push(0x42);
        assert!(decode(&binary).is_err());
    }

    #[test]
    fn empty_element_encodes_minimally() {
        let e = Element::new("br");
        let binary = encode(&e);
        assert_eq!(binary.len(), 4); // 3-byte header + 1 tag byte
        assert_eq!(decode(&binary).unwrap(), e);
    }
}
