//! The element tree shared by HTML, WML and cHTML.

use std::borrow::Cow;
use std::fmt;

/// A node in a markup document: an element or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element with a tag, attributes and children.
    Element(Element),
    /// A text run (entity-decoded).
    Text(String),
}

impl Node {
    /// Builds a text node.
    pub fn text(s: impl Into<String>) -> Node {
        Node::Text(s.into())
    }

    /// The element inside this node, if it is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// Concatenated text content of this subtree.
    pub fn text_content(&self) -> String {
        match self {
            Node::Text(t) => t.clone(),
            Node::Element(e) => e.text_content(),
        }
    }
}

impl From<Element> for Node {
    fn from(e: Element) -> Node {
        Node::Element(e)
    }
}

/// An element: tag name, ordered attributes, ordered children.
///
/// ```
/// use markup::{Element, Node};
/// let doc = Element::new("p")
///     .with_attr("class", "intro")
///     .with_child(Node::text("Hello "))
///     .with_child(Element::new("b").with_child(Node::text("mobile")));
/// assert_eq!(doc.text_content(), "Hello mobile");
/// assert_eq!(doc.to_markup(), r#"<p class="intro">Hello <b>mobile</b></p>"#);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    tag: Cow<'static, str>,
    attrs: Vec<(Cow<'static, str>, String)>,
    children: Vec<Node>,
}

impl Element {
    /// Creates an empty element with the given (lowercased) tag.
    ///
    /// Tag names are `Cow<'static, str>` so the builder idiom —
    /// `Element::new("p")` — stores the literal without allocating;
    /// parsers pass owned `String`s.
    pub fn new(tag: impl Into<Cow<'static, str>>) -> Self {
        let mut tag = tag.into();
        // Lowercase in place only when needed: builder and parser tags
        // are almost always lowercase already, and lowercasing
        // unconditionally would allocate on this very hot path.
        if tag.bytes().any(|b| b.is_ascii_uppercase()) {
            tag.to_mut().make_ascii_lowercase();
        }
        Element {
            tag,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The tag name (always lowercase).
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// The tag as an owned handle — a pointer copy for literal-built
    /// elements, a clone for parsed ones. For re-tagging without going
    /// through a borrowed `&str`.
    pub fn tag_owned(&self) -> Cow<'static, str> {
        self.tag.clone()
    }

    /// The attribute list in document order.
    pub fn attrs(&self) -> &[(Cow<'static, str>, String)] {
        &self.attrs
    }

    /// The value of attribute `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k.as_ref() == name)
            .map(|(_, v)| v.as_str())
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, name: impl Into<Cow<'static, str>>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| *k == name) {
            slot.1 = value;
        } else {
            self.attrs.push((name, value));
        }
    }

    /// Builder-style [`Element::set_attr`].
    pub fn with_attr(
        mut self,
        name: impl Into<Cow<'static, str>>,
        value: impl Into<String>,
    ) -> Self {
        self.set_attr(name, value);
        self
    }

    /// The child list.
    pub fn children(&self) -> &[Node] {
        &self.children
    }

    /// Mutable access to the child list.
    pub fn children_mut(&mut self) -> &mut Vec<Node> {
        &mut self.children
    }

    /// Appends a child node.
    pub fn push_child(&mut self, child: impl Into<Node>) {
        self.children.push(child.into());
    }

    /// Builder-style [`Element::push_child`].
    pub fn with_child(mut self, child: impl Into<Node>) -> Self {
        self.push_child(child);
        self
    }

    /// Builder-style text child.
    pub fn with_text(self, text: impl Into<String>) -> Self {
        self.with_child(Node::text(text))
    }

    /// Concatenated text content of the subtree.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        for child in &self.children {
            match child {
                Node::Text(t) => out.push_str(t),
                Node::Element(e) => e.collect_text(out),
            }
        }
    }

    /// Depth-first iterator over all descendant elements (self included).
    pub fn descendants(&self) -> Descendants<'_> {
        Descendants { stack: vec![self] }
    }

    /// The first descendant (or self) with tag `tag`.
    pub fn find(&self, tag: &str) -> Option<&Element> {
        self.descendants().find(|e| e.tag == tag)
    }

    /// All descendants (or self) with tag `tag`.
    pub fn find_all<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.descendants().filter(move |e| e.tag == tag)
    }

    /// Number of elements in the subtree (self included).
    pub fn element_count(&self) -> usize {
        self.descendants().count()
    }

    /// Normalises the subtree so `parse(to_markup(self)) == self`,
    /// letting producers hand consumers the tree *alongside* its
    /// serialised form and spare them the re-parse.
    ///
    /// Applied per element: adjacent text children merge (serialisation
    /// concatenates them into one run), whitespace runs collapse to
    /// single spaces and whitespace-only runs are dropped (what the
    /// parser does to text), and attribute names are lowercased and
    /// deduplicated first-slot-wins-position / last-wins-value (what
    /// repeated `set_attr` does).
    ///
    /// Returns `false` without finishing when the tree cannot round-trip
    /// at all: a void element (`<br>`, `<img>`, …) with children, or a
    /// tag/attribute name the parser's name grammar rejects.
    pub fn normalise_for_roundtrip(&mut self) -> bool {
        if !is_parse_name(&self.tag) {
            return false;
        }
        if !self.children.is_empty() && crate::parse::VOID_ELEMENTS.contains(&self.tag.as_ref()) {
            return false;
        }
        for (name, _) in &mut self.attrs {
            if name.bytes().any(|b| b.is_ascii_uppercase()) {
                name.to_mut().make_ascii_lowercase();
            }
            if !is_parse_name(name) {
                return false;
            }
        }
        // Lowercasing may have created duplicate names; fold them the way
        // the parser's `set_attr` replay would.
        let mut i = 1;
        while i < self.attrs.len() {
            if let Some(first) = self.attrs[..i].iter().position(|(k, _)| *k == self.attrs[i].0) {
                let (_, value) = self.attrs.remove(i);
                self.attrs[first].1 = value;
            } else {
                i += 1;
            }
        }
        let mut merged: Vec<Node> = Vec::with_capacity(self.children.len());
        for child in self.children.drain(..) {
            match (merged.last_mut(), child) {
                (Some(Node::Text(prev)), Node::Text(t)) => prev.push_str(&t),
                (_, child) => merged.push(child),
            }
        }
        for child in &mut merged {
            match child {
                Node::Text(t) => {
                    if crate::parse::needs_ws_normalise(t) {
                        *t = crate::parse::normalise_ws(t);
                    }
                }
                Node::Element(e) => {
                    if !e.normalise_for_roundtrip() {
                        return false;
                    }
                }
            }
        }
        merged.retain(|c| !matches!(c, Node::Text(t) if t.trim().is_empty()));
        self.children = merged;
        true
    }

    /// Serialises to markup text with entity escaping.
    pub fn to_markup(&self) -> String {
        let mut out = String::with_capacity(self.markup_len());
        self.write_markup(&mut out);
        out
    }

    /// Lower bound on the serialised length (exact when nothing needs
    /// escaping) — sizes the output buffer in one allocation.
    fn markup_len(&self) -> usize {
        // "<tag/>" or "<tag></tag>".
        let mut len = 2 + self.tag.len()
            + if self.children.is_empty() {
                1
            } else {
                3 + self.tag.len()
            };
        for (k, v) in &self.attrs {
            len += 4 + k.len() + v.len();
        }
        for child in &self.children {
            len += match child {
                Node::Text(t) => t.len(),
                Node::Element(e) => e.markup_len(),
            };
        }
        len
    }

    fn write_markup(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.tag);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            push_escaped(out, v);
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for child in &self.children {
            match child {
                Node::Text(t) => push_escaped(out, t),
                Node::Element(e) => e.write_markup(out),
            }
        }
        out.push_str("</");
        out.push_str(&self.tag);
        out.push('>');
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markup())
    }
}

/// Iterator returned by [`Element::descendants`].
#[derive(Debug)]
pub struct Descendants<'a> {
    stack: Vec<&'a Element>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = &'a Element;

    fn next(&mut self) -> Option<&'a Element> {
        let e = self.stack.pop()?;
        for child in e.children.iter().rev() {
            if let Node::Element(c) = child {
                self.stack.push(c);
            }
        }
        Some(e)
    }
}

/// Whether `name` matches the parser's tag/attribute name grammar.
fn is_parse_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b':'))
}

/// Escapes `&`, `<`, `>` and `"` for serialisation.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    push_escaped(&mut out, text);
    out
}

/// [`escape`] straight into an output buffer; clean text (the common
/// case) is appended with a single memcpy, no intermediate allocation.
fn push_escaped(out: &mut String, text: &str) {
    if !text.bytes().any(|b| matches!(b, b'&' | b'<' | b'>' | b'"')) {
        out.push_str(text);
        return;
    }
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("html")
            .with_child(Element::new("head").with_child(Element::new("title").with_text("Shop")))
            .with_child(
                Element::new("body")
                    .with_child(Element::new("p").with_text("Buy "))
                    .with_child(
                        Element::new("a")
                            .with_attr("href", "/cart")
                            .with_text("now"),
                    ),
            )
    }

    #[test]
    fn builders_and_getters() {
        let e = Element::new("A").with_attr("Href", "/x");
        assert_eq!(e.tag(), "a"); // tag lowercased
        assert_eq!(e.attr("Href"), Some("/x")); // attr case preserved
        assert_eq!(e.attr("nope"), None);
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("img");
        e.set_attr("src", "a.png");
        e.set_attr("src", "b.png");
        assert_eq!(e.attr("src"), Some("b.png"));
        assert_eq!(e.attrs().len(), 1);
    }

    #[test]
    fn text_content_concatenates_subtree() {
        assert_eq!(sample().text_content(), "ShopBuy now");
    }

    #[test]
    fn find_locates_descendants() {
        let doc = sample();
        assert_eq!(doc.find("title").unwrap().text_content(), "Shop");
        assert_eq!(doc.find("a").unwrap().attr("href"), Some("/cart"));
        assert!(doc.find("table").is_none());
        assert_eq!(doc.find_all("p").count(), 1);
        assert_eq!(doc.element_count(), 6);
    }

    #[test]
    fn descendants_are_depth_first_in_document_order() {
        let doc = sample();
        let tags: Vec<&str> = doc.descendants().map(|e| e.tag()).collect();
        assert_eq!(tags, vec!["html", "head", "title", "body", "p", "a"]);
    }

    #[test]
    fn serialisation_escapes_entities() {
        let e = Element::new("p")
            .with_attr("title", "a\"b")
            .with_text("1 < 2 & 3 > 2");
        assert_eq!(
            e.to_markup(),
            r#"<p title="a&quot;b">1 &lt; 2 &amp; 3 &gt; 2</p>"#
        );
    }

    #[test]
    fn empty_elements_self_close() {
        assert_eq!(Element::new("br").to_markup(), "<br/>");
    }

    #[test]
    fn normalised_trees_round_trip_through_the_parser() {
        let cases = [
            sample(),
            Element::new("p")
                .with_text("a\n   b")
                .with_text(" and ")
                .with_child(Element::new("b").with_text("c"))
                .with_text("   "),
            Element::new("p")
                .with_attr("Title", "5 < 6 & \"quoted\"")
                .with_text("1 < 2 & 3 > 2"),
            Element::new("div").with_child(Element::new("br")),
        ];
        for mut doc in cases {
            assert!(doc.normalise_for_roundtrip());
            let reparsed = crate::parse::parse(&doc.to_markup()).unwrap();
            assert_eq!(doc, reparsed, "markup: {}", doc.to_markup());
        }
    }

    #[test]
    fn normalise_is_identity_on_clean_builder_trees() {
        let mut doc = sample();
        assert!(doc.normalise_for_roundtrip());
        assert_eq!(doc, sample());
    }

    #[test]
    fn normalise_refuses_unparseable_trees() {
        let mut void_with_children = Element::new("br").with_text("x");
        assert!(!void_with_children.normalise_for_roundtrip());
        let mut bad_tag = Element::new("not a name");
        assert!(!bad_tag.normalise_for_roundtrip());
        let mut bad_attr = Element::new("p").with_attr("bad name", "v");
        assert!(!bad_attr.normalise_for_roundtrip());
    }

    #[test]
    fn normalise_folds_duplicate_attr_names_like_the_parser() {
        let mut e = Element::new("a");
        // Bypass set_attr's exact-case replacement by differing in case.
        e.set_attr("Href", "/first");
        e.set_attr("href", "/second");
        assert_eq!(e.attrs().len(), 2);
        assert!(e.normalise_for_roundtrip());
        assert_eq!(e.attrs().len(), 1);
        assert_eq!(e.attr("href"), Some("/second"));
        let reparsed = crate::parse::parse(&e.to_markup()).unwrap();
        assert_eq!(e, reparsed);
    }
}
