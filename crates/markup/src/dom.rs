//! The element tree shared by HTML, WML and cHTML.

use std::fmt;

/// A node in a markup document: an element or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element with a tag, attributes and children.
    Element(Element),
    /// A text run (entity-decoded).
    Text(String),
}

impl Node {
    /// Builds a text node.
    pub fn text(s: impl Into<String>) -> Node {
        Node::Text(s.into())
    }

    /// The element inside this node, if it is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// Concatenated text content of this subtree.
    pub fn text_content(&self) -> String {
        match self {
            Node::Text(t) => t.clone(),
            Node::Element(e) => e.text_content(),
        }
    }
}

impl From<Element> for Node {
    fn from(e: Element) -> Node {
        Node::Element(e)
    }
}

/// An element: tag name, ordered attributes, ordered children.
///
/// ```
/// use markup::{Element, Node};
/// let doc = Element::new("p")
///     .with_attr("class", "intro")
///     .with_child(Node::text("Hello "))
///     .with_child(Element::new("b").with_child(Node::text("mobile")));
/// assert_eq!(doc.text_content(), "Hello mobile");
/// assert_eq!(doc.to_markup(), r#"<p class="intro">Hello <b>mobile</b></p>"#);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    tag: String,
    attrs: Vec<(String, String)>,
    children: Vec<Node>,
}

impl Element {
    /// Creates an empty element with the given (lowercased) tag.
    pub fn new(tag: impl Into<String>) -> Self {
        Element {
            tag: tag.into().to_ascii_lowercase(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The tag name (always lowercase).
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// The attribute list in document order.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.attrs
    }

    /// The value of attribute `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| *k == name) {
            slot.1 = value;
        } else {
            self.attrs.push((name, value));
        }
    }

    /// Builder-style [`Element::set_attr`].
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// The child list.
    pub fn children(&self) -> &[Node] {
        &self.children
    }

    /// Mutable access to the child list.
    pub fn children_mut(&mut self) -> &mut Vec<Node> {
        &mut self.children
    }

    /// Appends a child node.
    pub fn push_child(&mut self, child: impl Into<Node>) {
        self.children.push(child.into());
    }

    /// Builder-style [`Element::push_child`].
    pub fn with_child(mut self, child: impl Into<Node>) -> Self {
        self.push_child(child);
        self
    }

    /// Builder-style text child.
    pub fn with_text(self, text: impl Into<String>) -> Self {
        self.with_child(Node::text(text))
    }

    /// Concatenated text content of the subtree.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        for child in &self.children {
            match child {
                Node::Text(t) => out.push_str(t),
                Node::Element(e) => e.collect_text(out),
            }
        }
    }

    /// Depth-first iterator over all descendant elements (self included).
    pub fn descendants(&self) -> Descendants<'_> {
        Descendants { stack: vec![self] }
    }

    /// The first descendant (or self) with tag `tag`.
    pub fn find(&self, tag: &str) -> Option<&Element> {
        self.descendants().find(|e| e.tag == tag)
    }

    /// All descendants (or self) with tag `tag`.
    pub fn find_all<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.descendants().filter(move |e| e.tag == tag)
    }

    /// Number of elements in the subtree (self included).
    pub fn element_count(&self) -> usize {
        self.descendants().count()
    }

    /// Serialises to markup text with entity escaping.
    pub fn to_markup(&self) -> String {
        let mut out = String::new();
        self.write_markup(&mut out);
        out
    }

    fn write_markup(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.tag);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for child in &self.children {
            match child {
                Node::Text(t) => out.push_str(&escape(t)),
                Node::Element(e) => e.write_markup(out),
            }
        }
        out.push_str("</");
        out.push_str(&self.tag);
        out.push('>');
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markup())
    }
}

/// Iterator returned by [`Element::descendants`].
#[derive(Debug)]
pub struct Descendants<'a> {
    stack: Vec<&'a Element>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = &'a Element;

    fn next(&mut self) -> Option<&'a Element> {
        let e = self.stack.pop()?;
        for child in e.children.iter().rev() {
            if let Node::Element(c) = child {
                self.stack.push(c);
            }
        }
        Some(e)
    }
}

/// Escapes `&`, `<`, `>` and `"` for serialisation.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("html")
            .with_child(Element::new("head").with_child(Element::new("title").with_text("Shop")))
            .with_child(
                Element::new("body")
                    .with_child(Element::new("p").with_text("Buy "))
                    .with_child(
                        Element::new("a")
                            .with_attr("href", "/cart")
                            .with_text("now"),
                    ),
            )
    }

    #[test]
    fn builders_and_getters() {
        let e = Element::new("A").with_attr("Href", "/x");
        assert_eq!(e.tag(), "a"); // tag lowercased
        assert_eq!(e.attr("Href"), Some("/x")); // attr case preserved
        assert_eq!(e.attr("nope"), None);
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("img");
        e.set_attr("src", "a.png");
        e.set_attr("src", "b.png");
        assert_eq!(e.attr("src"), Some("b.png"));
        assert_eq!(e.attrs().len(), 1);
    }

    #[test]
    fn text_content_concatenates_subtree() {
        assert_eq!(sample().text_content(), "ShopBuy now");
    }

    #[test]
    fn find_locates_descendants() {
        let doc = sample();
        assert_eq!(doc.find("title").unwrap().text_content(), "Shop");
        assert_eq!(doc.find("a").unwrap().attr("href"), Some("/cart"));
        assert!(doc.find("table").is_none());
        assert_eq!(doc.find_all("p").count(), 1);
        assert_eq!(doc.element_count(), 6);
    }

    #[test]
    fn descendants_are_depth_first_in_document_order() {
        let doc = sample();
        let tags: Vec<&str> = doc.descendants().map(|e| e.tag()).collect();
        assert_eq!(tags, vec!["html", "head", "title", "body", "p", "a"]);
    }

    #[test]
    fn serialisation_escapes_entities() {
        let e = Element::new("p")
            .with_attr("title", "a\"b")
            .with_text("1 < 2 & 3 > 2");
        assert_eq!(
            e.to_markup(),
            r#"<p title="a&quot;b">1 &lt; 2 &amp; 3 &gt; 2</p>"#
        );
    }

    #[test]
    fn empty_elements_self_close() {
        assert_eq!(Element::new("br").to_markup(), "<br/>");
    }
}
