//! A strict parser for the well-formed markup subset the engines emit.
//!
//! Handles: nested elements, quoted attributes, self-closing tags, HTML
//! void elements (`<br>`, `<img>`, `<input>`, `<hr>`, `<meta>`, `<link>`),
//! the five standard entities, comments, and a leading prolog/doctype
//! (skipped). Case-insensitive tag matching, tags normalised to lowercase.

use std::fmt;

use crate::dom::{Element, Node};

/// HTML elements that never have content or a closing tag.
pub const VOID_ELEMENTS: [&str; 6] = ["br", "img", "input", "hr", "meta", "link"];

/// Error produced when markup fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMarkupError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseMarkupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "markup parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseMarkupError {}

/// Parses `input` into its single root element.
///
/// # Errors
///
/// Returns [`ParseMarkupError`] on malformed input: unbalanced tags,
/// unterminated strings/comments, or trailing non-whitespace content.
///
/// ```
/// let root = markup::parse::parse("<p>Hi <b>there</b></p>")?;
/// assert_eq!(root.tag(), "p");
/// assert_eq!(root.text_content(), "Hi there");
/// # Ok::<(), markup::ParseMarkupError>(())
/// ```
pub fn parse(input: &str) -> Result<Element, ParseMarkupError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws_and_meta()?;
    let root = p.parse_element()?;
    p.skip_ws_and_meta()?;
    if p.pos < p.input.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseMarkupError {
        ParseMarkupError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments, doctypes and processing instructions.
    fn skip_ws_and_meta(&mut self) -> Result<(), ParseMarkupError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                let end = find(self.input, self.pos + 4, b"-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.pos = end + 3;
            } else if self.starts_with("<!") || self.starts_with("<?") {
                let end = find(self.input, self.pos + 2, b">")
                    .ok_or_else(|| self.err("unterminated declaration"))?;
                self.pos = end + 1;
            } else {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseMarkupError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'-' || c == b'_' || c == b':')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).to_ascii_lowercase())
    }

    fn parse_element(&mut self) -> Result<Element, ParseMarkupError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let tag = self.parse_name()?;
        let mut element = Element::new(tag.clone());

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(element); // self-closing
                }
                Some(_) => {
                    let name = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        self.skip_ws();
                        let quote = self.peek().ok_or_else(|| self.err("eof in attribute"))?;
                        if quote != b'"' && quote != b'\'' {
                            return Err(self.err("attribute value must be quoted"));
                        }
                        self.pos += 1;
                        let start = self.pos;
                        while self.peek() != Some(quote) {
                            if self.peek().is_none() {
                                return Err(self.err("unterminated attribute value"));
                            }
                            self.pos += 1;
                        }
                        let raw = String::from_utf8_lossy(&self.input[start..self.pos]);
                        self.pos += 1;
                        // Entity-free values (the common case) skip the
                        // unescape pass and its extra allocation.
                        let value = if raw.contains('&') {
                            unescape(&raw)
                        } else {
                            raw.into_owned()
                        };
                        element.set_attr(name, value);
                    } else {
                        // Boolean attribute.
                        element.set_attr(name, "");
                    }
                }
                None => return Err(self.err("eof inside tag")),
            }
        }

        if VOID_ELEMENTS.contains(&tag.as_str()) {
            return Ok(element); // no content, no closing tag expected
        }

        // Children until the matching close tag.
        loop {
            if self.starts_with("<!--") {
                let end = find(self.input, self.pos + 4, b"-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.pos = end + 3;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != tag {
                    return Err(self.err(format!("mismatched close tag: <{tag}> vs </{close}>")));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in close tag"));
                }
                self.pos += 1;
                return Ok(element);
            }
            match self.peek() {
                Some(b'<') => {
                    let child = self.parse_element()?;
                    element.push_child(child);
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.peek(), Some(b'<') | None) {
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]);
                    // Decode and normalise only when the run needs it —
                    // clean text takes the single-allocation path.
                    let text = if raw.contains('&') {
                        std::borrow::Cow::Owned(unescape(&raw))
                    } else {
                        raw
                    };
                    if !text.trim().is_empty() {
                        let text = if needs_ws_normalise(&text) {
                            normalise_ws(&text)
                        } else {
                            text.into_owned()
                        };
                        element.push_child(Node::text(text));
                    }
                }
                None => return Err(self.err(format!("eof inside <{tag}>"))),
            }
        }
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|i| i + from)
}

/// Decodes the five standard entities (and `&#NN;` numeric forms).
pub fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let Some(end) = rest.find(';') else {
            out.push('&');
            rest = &rest[1..];
            continue;
        };
        let entity = &rest[1..end];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                if let Some(num) = entity.strip_prefix('#') {
                    if let Ok(code) = num.parse::<u32>() {
                        if let Some(c) = char::from_u32(code) {
                            out.push(c);
                            rest = &rest[end + 1..];
                            continue;
                        }
                    }
                }
                // Unknown entity: keep literally.
                out.push('&');
                out.push_str(entity);
                out.push(';');
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    out
}

/// Whether [`normalise_ws`] would change `text`: any non-space
/// whitespace, or a run of consecutive spaces.
pub(crate) fn needs_ws_normalise(text: &str) -> bool {
    let mut last_ws = false;
    for c in text.chars() {
        if c.is_whitespace() {
            if c != ' ' || last_ws {
                return true;
            }
            last_ws = true;
        } else {
            last_ws = false;
        }
    }
    false
}

/// Collapses internal whitespace runs to single spaces (HTML semantics).
pub(crate) fn normalise_ws(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_ws = false;
    for c in text.chars() {
        if c.is_whitespace() {
            if !last_ws {
                out.push(' ');
            }
            last_ws = true;
        } else {
            out.push(c);
            last_ws = false;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structure() {
        let root = parse("<html><body><p>One</p><p>Two</p></body></html>").unwrap();
        assert_eq!(root.tag(), "html");
        assert_eq!(root.find_all("p").count(), 2);
        assert_eq!(root.text_content(), "OneTwo");
    }

    #[test]
    fn parses_attributes_and_entities() {
        let root = parse(r#"<a href="/x?a=1&amp;b=2" class='k'>5 &lt; 6</a>"#).unwrap();
        assert_eq!(root.attr("href"), Some("/x?a=1&b=2"));
        assert_eq!(root.attr("class"), Some("k"));
        assert_eq!(root.text_content(), "5 < 6");
    }

    #[test]
    fn void_and_self_closing_elements() {
        let root = parse("<p>a<br>b<img src=\"i.png\">c<hr/></p>").unwrap();
        assert_eq!(root.text_content(), "abc");
        assert!(root.find("br").is_some());
        assert_eq!(root.find("img").unwrap().attr("src"), Some("i.png"));
    }

    #[test]
    fn skips_doctype_and_comments() {
        let root =
            parse("<!DOCTYPE html>\n<!-- hi --><html><body><!-- x -->ok</body></html>").unwrap();
        assert_eq!(root.text_content(), "ok");
    }

    #[test]
    fn tag_case_is_normalised() {
        let root = parse("<HTML><Body>x</bOdY></HTML>").unwrap();
        assert_eq!(root.tag(), "html");
        assert_eq!(root.find("body").unwrap().text_content(), "x");
    }

    #[test]
    fn boolean_attributes() {
        let root = parse(r#"<input checked name="q"/>"#).unwrap();
        assert_eq!(root.attr("checked"), Some(""));
        assert_eq!(root.attr("name"), Some("q"));
    }

    #[test]
    fn numeric_entities_decode() {
        let root = parse("<p>&#65;&#8364;</p>").unwrap();
        assert_eq!(root.text_content(), "A€");
    }

    #[test]
    fn whitespace_is_collapsed() {
        let root = parse("<p>a\n   b\t\tc</p>").unwrap();
        assert_eq!(root.text_content(), "a b c");
    }

    #[test]
    fn errors_carry_position_and_reason() {
        let cases = [
            ("<p>unclosed", "eof inside"),
            ("<p></q>", "mismatched close tag"),
            ("<p></p><p></p>", "trailing content"),
            ("<p a=unquoted></p>", "quoted"),
            ("", "expected '<'"),
            ("<p><!-- never></p>", "unterminated comment"),
        ];
        for (input, needle) in cases {
            let err = parse(input).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{input:?} gave {:?}, wanted {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn round_trip_parse_serialise_parse() {
        let original = "<html><body><p class=\"x\">Hi <b>you</b> &amp; me</p><br/></body></html>";
        let parsed = parse(original).unwrap();
        let serialised = parsed.to_markup();
        let reparsed = parse(&serialised).unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn unknown_entities_pass_through() {
        assert_eq!(unescape("&nbsp;x"), "&nbsp;x");
        assert_eq!(unescape("a & b"), "a & b");
    }
}
