//! cHTML — Compact HTML, i-mode's host language (Table 3).
//!
//! cHTML is a strict subset of HTML designed for phones: no tables, no
//! frames, no stylesheets, no scripts. i-mode serves it *directly* over
//! (modified) TCP/IP — no gateway translation step — which is exactly the
//! architectural contrast with WAP the middleware experiments measure.

use std::fmt;

use crate::dom::Element;

/// Tags allowed in our cHTML subset (per the Compact HTML W3C note, minus
/// rarely used presentation tags).
pub const CHTML_TAGS: [&str; 24] = [
    "html", "head", "title", "body", "p", "a", "br", "img", "h1", "h2", "h3", "h4", "h5", "h6",
    "ul", "ol", "li", "form", "input", "select", "option", "div", "center", "hr",
];

/// Attributes cHTML keeps; everything else is stripped on simplification.
pub const CHTML_ATTRS: [&str; 8] = [
    "href", "src", "alt", "name", "value", "type", "action", "method",
];

/// Error produced by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateChtmlError {
    /// What is wrong with the document.
    pub message: String,
}

impl fmt::Display for ValidateChtmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cHTML: {}", self.message)
    }
}

impl std::error::Error for ValidateChtmlError {}

/// Checks that `doc` uses only cHTML tags and attributes.
///
/// # Errors
///
/// Returns [`ValidateChtmlError`] describing the first violation found.
pub fn validate(doc: &Element) -> Result<(), ValidateChtmlError> {
    if doc.tag() != "html" {
        return Err(ValidateChtmlError {
            message: format!("root must be <html>, found <{}>", doc.tag()),
        });
    }
    for e in doc.descendants() {
        if !CHTML_TAGS.contains(&e.tag()) {
            return Err(ValidateChtmlError {
                message: format!("tag <{}> is not cHTML", e.tag()),
            });
        }
        for (name, _) in e.attrs() {
            if !CHTML_ATTRS.contains(&name.as_ref()) {
                return Err(ValidateChtmlError {
                    message: format!("attribute {name:?} on <{}> is not cHTML", e.tag()),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html;

    #[test]
    fn plain_page_is_valid_chtml() {
        let doc = html::page(
            "Menu",
            vec![html::p("Pick one").into(), html::ul(["a", "b"]).into()],
        );
        validate(&doc).unwrap();
    }

    #[test]
    fn tables_are_rejected() {
        let doc = html::page("T", vec![html::table([("a", "b")]).into()]);
        assert!(validate(&doc)
            .unwrap_err()
            .message
            .contains("<table> is not cHTML"));
    }

    #[test]
    fn styling_attributes_are_rejected() {
        let doc = html::page(
            "S",
            vec![Element::new("p").with_attr("style", "color:red").into()],
        );
        assert!(validate(&doc).unwrap_err().message.contains("\"style\""));
    }

    #[test]
    fn wrong_root_is_rejected() {
        assert!(validate(&Element::new("wml")).is_err());
    }
}
