//! Integration: a walking station, a corridor of access points, and the
//! radio that follows — mobility driving rate adaptation and AP handoff.

use std::cell::RefCell;
use std::rc::Rc;

use simnet::rng::rng_for;
use simnet::{SimTime, Simulator};
use wireless::mobility::{ApField, Point, Waypoint};
use wireless::{RadioLink, WlanStandard};

/// Walks a station down a 3-AP corridor and re-associates it with the
/// nearest AP each second, tracking rate changes and handoffs.
#[test]
fn corridor_walk_produces_handoffs_and_rate_adaptation() {
    let mut sim = Simulator::new();
    let field = ApField::corridor(3, 120.0); // APs at 0, 120, 240 m
    let radio: Rc<RadioLink<Vec<u8>>> = RadioLink::new(WlanStandard::Dot11b, 0.0, 5);

    let delivered: Rc<RefCell<u32>> = Rc::default();
    {
        let d = Rc::clone(&delivered);
        radio.set_receiver(move |_sim, _msg| *d.borrow_mut() += 1);
    }

    // The station walks the corridor at 6 m/s (a slow vehicle).
    let mut position = Point::new(0.0, 0.0);
    let mut current_ap = 0usize;
    let mut handoffs = 0u32;
    let mut rates_seen = std::collections::BTreeSet::new();

    for second in 0..60u64 {
        position = Point::new(position.x + 6.0, 0.0);
        let (nearest, distance) = field.nearest(position).expect("corridor has APs");
        if nearest != current_ap {
            handoffs += 1;
            current_ap = nearest;
        }
        radio.set_distance(distance);
        rates_seen.insert(radio.current_rate_bps());

        // One frame per second while associated and in range.
        if radio.in_range() {
            let radio = Rc::clone(&radio);
            sim.schedule_at(SimTime::from_secs(second), move |sim| {
                radio.send(sim, vec![0u8; 400]);
            });
        }
        sim.run_until(SimTime::from_secs(second));
    }
    sim.run();

    // Walking 360 m past APs at 0/120/240 m crosses two midpoints.
    assert_eq!(handoffs, 2, "expected a handoff at each cell midpoint");
    // The auto-rate curve visited more than one tier along the way.
    assert!(rates_seen.len() >= 3, "rates seen: {rates_seen:?}");
    assert!(rates_seen.contains(&11_000_000));
    assert!(rates_seen.contains(&1_000_000));
    // Traffic flowed for most of the walk (cell edges are lossy).
    assert!(
        *delivered.borrow() >= 40,
        "delivered {}",
        delivered.borrow()
    );
}

/// A random-waypoint walker inside one cell stays associated and the
/// distance-driven rate never exceeds the standard's maximum.
#[test]
fn waypoint_walker_keeps_a_sane_rate_profile() {
    let mut walk = Waypoint::new(
        Point::new(40.0, 40.0),
        80.0,
        80.0,
        1.5,
        rng_for(9, "walker"),
    );
    let ap = Point::new(40.0, 40.0);
    let radio: Rc<RadioLink<Vec<u8>>> = RadioLink::new(WlanStandard::Dot11g, 0.0, 6);

    for _ in 0..300 {
        let p = walk.advance(1.0);
        let d = p.distance_to(ap);
        radio.set_distance(d);
        assert!(radio.current_rate_bps() <= WlanStandard::Dot11g.max_rate_bps());
        // Inside an 80×80 box centred on the AP the station never leaves
        // 802.11g coverage (max corner distance ≈ 57 m < 150 m).
        assert!(radio.in_range(), "left coverage at {d} m");
    }
}
