//! Wireless LAN standards — the executable form of the paper's Table 4.
//!
//! | Standard | Max rate (Mbps) | Typical range (m) | Modulation / band (GHz) |
//! |---|---|---|---|
//! | Bluetooth | 1 | 5–10 | GFSK / 2.4 |
//! | 802.11b (Wi-Fi) | 11 | 50–100 | HR-DSSS / 2.4 |
//! | 802.11a | 54 | 50–100 | OFDM / 5 |
//! | HyperLAN2 | 54 | 50–300 | OFDM / 5 |
//! | 802.11g | 54 | 50–150 | OFDM / 2.4 |
//!
//! Each standard exposes the table's static facts plus two derived curves
//! that make the facts *load-bearing* in simulation: the auto-rate fallback
//! curve [`WlanStandard::rate_at`] and the distance-dependent bit-error
//! rate [`WlanStandard::ber_at`].

use simnet::{LinkParams, LossModel, SimDuration};

/// Modulation schemes named in Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// Gaussian frequency-shift keying (Bluetooth).
    Gfsk,
    /// High-rate direct-sequence spread spectrum (802.11b).
    HrDsss,
    /// Orthogonal frequency-division multiplexing (802.11a/g, HyperLAN2).
    Ofdm,
}

impl std::fmt::Display for Modulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Modulation::Gfsk => "GFSK",
            Modulation::HrDsss => "HR-DSSS",
            Modulation::Ofdm => "OFDM",
        };
        f.write_str(name)
    }
}

/// Operating frequency bands named in Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Band {
    /// 2.4 GHz ISM band.
    Ghz2_4,
    /// 5 GHz band.
    Ghz5,
}

impl Band {
    /// Centre frequency in GHz.
    pub fn ghz(self) -> f64 {
        match self {
            Band::Ghz2_4 => 2.4,
            Band::Ghz5 => 5.0,
        }
    }
}

impl std::fmt::Display for Band {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} GHz", self.ghz())
    }
}

/// A wireless LAN standard from Table 4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WlanStandard {
    /// Bluetooth: 1 Mbps, 5–10 m, GFSK, 2.4 GHz — personal area networks.
    Bluetooth,
    /// IEEE 802.11b "Wi-Fi": 11 Mbps, 50–100 m, HR-DSSS, 2.4 GHz.
    Dot11b,
    /// IEEE 802.11a: 54 Mbps, 50–100 m, OFDM, 5 GHz.
    Dot11a,
    /// ETSI HyperLAN2: 54 Mbps, 50–300 m, OFDM, 5 GHz.
    HyperLan2,
    /// IEEE 802.11g: 54 Mbps, 50–150 m, OFDM, 2.4 GHz.
    Dot11g,
}

impl std::fmt::Display for WlanStandard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl WlanStandard {
    /// All Table 4 standards, in the table's row order.
    pub const ALL: [WlanStandard; 5] = [
        WlanStandard::Bluetooth,
        WlanStandard::Dot11b,
        WlanStandard::Dot11a,
        WlanStandard::HyperLan2,
        WlanStandard::Dot11g,
    ];

    /// The standard's conventional name.
    pub fn name(self) -> &'static str {
        match self {
            WlanStandard::Bluetooth => "Bluetooth",
            WlanStandard::Dot11b => "802.11b (Wi-Fi)",
            WlanStandard::Dot11a => "802.11a",
            WlanStandard::HyperLan2 => "HyperLAN2",
            WlanStandard::Dot11g => "802.11g",
        }
    }

    /// Maximum (channel) data rate in bits per second — Table 4 column 2.
    pub fn max_rate_bps(self) -> u64 {
        match self {
            WlanStandard::Bluetooth => 1_000_000,
            WlanStandard::Dot11b => 11_000_000,
            WlanStandard::Dot11a | WlanStandard::HyperLan2 | WlanStandard::Dot11g => 54_000_000,
        }
    }

    /// Typical transmission range in metres, `(near, far)` — Table 4 col 3.
    ///
    /// `near` is the distance up to which the full rate holds; `far` is the
    /// edge of usable coverage.
    pub fn range_m(self) -> (f64, f64) {
        match self {
            WlanStandard::Bluetooth => (5.0, 10.0),
            WlanStandard::Dot11b => (50.0, 100.0),
            WlanStandard::Dot11a => (50.0, 100.0),
            WlanStandard::HyperLan2 => (50.0, 300.0),
            WlanStandard::Dot11g => (50.0, 150.0),
        }
    }

    /// Modulation scheme — Table 4 column 4 (first half).
    pub fn modulation(self) -> Modulation {
        match self {
            WlanStandard::Bluetooth => Modulation::Gfsk,
            WlanStandard::Dot11b => Modulation::HrDsss,
            WlanStandard::Dot11a | WlanStandard::HyperLan2 | WlanStandard::Dot11g => {
                Modulation::Ofdm
            }
        }
    }

    /// Operating band — Table 4 column 4 (second half).
    pub fn band(self) -> Band {
        match self {
            WlanStandard::Bluetooth | WlanStandard::Dot11b | WlanStandard::Dot11g => Band::Ghz2_4,
            WlanStandard::Dot11a | WlanStandard::HyperLan2 => Band::Ghz5,
        }
    }

    /// The standard's auto-rate fallback tiers, fastest first, in bps.
    ///
    /// Real radios step down through discrete modulation rates as signal
    /// quality degrades; these are the published tier sets.
    pub fn rate_tiers(self) -> &'static [u64] {
        match self {
            WlanStandard::Bluetooth => &[1_000_000, 723_000, 433_000],
            WlanStandard::Dot11b => &[11_000_000, 5_500_000, 2_000_000, 1_000_000],
            WlanStandard::Dot11a | WlanStandard::HyperLan2 => {
                &[54_000_000, 36_000_000, 24_000_000, 12_000_000, 6_000_000]
            }
            WlanStandard::Dot11g => &[54_000_000, 36_000_000, 24_000_000, 12_000_000, 6_000_000],
        }
    }

    /// Achievable PHY rate at `distance_m` metres from the access point,
    /// or `None` when out of range.
    ///
    /// Full rate holds out to the near edge of the typical range; beyond
    /// it the radio steps down through [`WlanStandard::rate_tiers`]
    /// linearly in distance until coverage ends at the far edge.
    ///
    /// ```
    /// use wireless::WlanStandard;
    /// let b = WlanStandard::Dot11b;
    /// assert_eq!(b.rate_at(10.0), Some(11_000_000));
    /// assert_eq!(b.rate_at(99.0), Some(1_000_000));
    /// assert_eq!(b.rate_at(150.0), None);
    /// ```
    pub fn rate_at(self, distance_m: f64) -> Option<u64> {
        assert!(distance_m >= 0.0, "distance must be non-negative");
        let (near, far) = self.range_m();
        if distance_m > far {
            return None;
        }
        let tiers = self.rate_tiers();
        if distance_m <= near {
            return Some(tiers[0]);
        }
        // Map (near, far] onto tier indices 1..len.
        let frac = (distance_m - near) / (far - near); // (0, 1]
        let step = 1 + ((tiers.len() - 1) as f64 * frac).ceil() as usize - 1;
        Some(tiers[step.min(tiers.len() - 1)])
    }

    /// Bit-error rate at `distance_m` metres.
    ///
    /// A floor of `1e-6` (typical post-FEC wireless residual error — three
    /// orders of magnitude worse than wire, which is why §5.2 says TCP
    /// "performs poorly" here) rising exponentially to `1e-4` at the
    /// coverage edge; `0.5` (useless) beyond it.
    pub fn ber_at(self, distance_m: f64) -> f64 {
        assert!(distance_m >= 0.0, "distance must be non-negative");
        let (near, far) = self.range_m();
        if distance_m > far {
            return 0.5;
        }
        if distance_m <= near {
            return 1e-6;
        }
        let frac = (distance_m - near) / (far - near);
        // log-linear between 1e-6 and 1e-4
        10f64.powf(-6.0 + 2.0 * frac)
    }

    /// Per-frame MAC+PHY overhead in bytes (preamble, MAC header, FCS and
    /// the expected cost of contention, amortised per frame).
    pub fn frame_overhead_bytes(self) -> usize {
        match self {
            WlanStandard::Bluetooth => 17,
            _ => 34,
        }
    }

    /// One-way propagation + MAC access delay for a frame.
    ///
    /// Propagation at WLAN scale is sub-microsecond; what the MAC adds is
    /// DIFS/backoff on the order of hundreds of microseconds.
    pub fn access_delay(self) -> SimDuration {
        match self {
            WlanStandard::Bluetooth => SimDuration::from_micros(1_250), // TDD slot pair
            WlanStandard::Dot11b => SimDuration::from_micros(400),
            WlanStandard::Dot11a | WlanStandard::HyperLan2 => SimDuration::from_micros(100),
            WlanStandard::Dot11g => SimDuration::from_micros(150),
        }
    }

    /// Builds [`LinkParams`] for a station at `distance_m` from the AP, or
    /// `None` when out of range.
    ///
    /// The returned link carries the standard's achievable rate at that
    /// distance, its MAC access delay, and a [`LossModel::BitError`]
    /// channel at the distance-dependent BER.
    pub fn link_params_at(self, distance_m: f64) -> Option<LinkParams> {
        let rate = self.rate_at(distance_m)?;
        Some(LinkParams {
            bandwidth_bps: rate,
            propagation: self.access_delay(),
            queue_capacity: 64,
            loss: LossModel::BitError {
                ber: self.ber_at(distance_m),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_static_facts() {
        use WlanStandard::*;
        // Max data rate column.
        assert_eq!(Bluetooth.max_rate_bps(), 1_000_000);
        assert_eq!(Dot11b.max_rate_bps(), 11_000_000);
        assert_eq!(Dot11a.max_rate_bps(), 54_000_000);
        assert_eq!(HyperLan2.max_rate_bps(), 54_000_000);
        assert_eq!(Dot11g.max_rate_bps(), 54_000_000);
        // Range column.
        assert_eq!(Bluetooth.range_m(), (5.0, 10.0));
        assert_eq!(Dot11b.range_m(), (50.0, 100.0));
        assert_eq!(HyperLan2.range_m(), (50.0, 300.0));
        assert_eq!(Dot11g.range_m(), (50.0, 150.0));
        // Modulation / band column.
        assert_eq!(Bluetooth.modulation(), Modulation::Gfsk);
        assert_eq!(Dot11b.modulation(), Modulation::HrDsss);
        assert_eq!(Dot11a.band(), Band::Ghz5);
        assert_eq!(Dot11g.band(), Band::Ghz2_4);
    }

    #[test]
    fn full_rate_within_near_range() {
        for std in WlanStandard::ALL {
            let (near, _) = std.range_m();
            assert_eq!(std.rate_at(0.0), Some(std.max_rate_bps()));
            assert_eq!(std.rate_at(near), Some(std.max_rate_bps()), "{std}");
        }
    }

    #[test]
    fn rate_degrades_monotonically_with_distance() {
        for std in WlanStandard::ALL {
            let (_, far) = std.range_m();
            let mut last = u64::MAX;
            let mut d = 0.0;
            while d <= far {
                let r = std.rate_at(d).unwrap_or(0);
                assert!(r <= last, "{std} rate increased at {d} m");
                last = r;
                d += 1.0;
            }
            assert_eq!(std.rate_at(far + 1.0), None);
        }
    }

    #[test]
    fn edge_of_coverage_hits_lowest_tier() {
        for std in WlanStandard::ALL {
            let (_, far) = std.range_m();
            let tiers = std.rate_tiers();
            assert_eq!(std.rate_at(far), Some(*tiers.last().unwrap()), "{std}");
        }
    }

    #[test]
    fn ber_rises_with_distance() {
        let s = WlanStandard::Dot11b;
        assert_eq!(s.ber_at(10.0), 1e-6);
        let mid = s.ber_at(75.0);
        let edge = s.ber_at(100.0);
        assert!(mid > 1e-6 && mid < edge);
        assert!((edge - 1e-4).abs() < 1e-9);
        assert_eq!(s.ber_at(200.0), 0.5);
    }

    #[test]
    fn link_params_follow_distance() {
        let p = WlanStandard::Dot11g.link_params_at(10.0).unwrap();
        assert_eq!(p.bandwidth_bps, 54_000_000);
        assert!(matches!(p.loss, LossModel::BitError { ber } if ber == 1e-6));
        assert!(WlanStandard::Dot11g.link_params_at(151.0).is_none());
    }

    #[test]
    fn bluetooth_is_pan_scale() {
        // §6.1: "Bluetooth technology supports very limited coverage range
        // and throughput … only suitable for personal area networks."
        let bt = WlanStandard::Bluetooth;
        for other in [
            WlanStandard::Dot11b,
            WlanStandard::Dot11a,
            WlanStandard::Dot11g,
        ] {
            assert!(bt.max_rate_bps() < other.max_rate_bps() / 10);
            assert!(bt.range_m().1 <= other.range_m().1 / 5.0);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_distance_panics() {
        WlanStandard::Dot11b.rate_at(-1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(WlanStandard::Dot11b.to_string(), "802.11b (Wi-Fi)");
        assert_eq!(Modulation::HrDsss.to_string(), "HR-DSSS");
        assert_eq!(Band::Ghz2_4.to_string(), "2.4 GHz");
    }
}
