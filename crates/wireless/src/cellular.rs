//! Cellular wireless networks — the executable form of the paper's Table 5.
//!
//! | Generation | Radio | Switching | Standards |
//! |---|---|---|---|
//! | 1G | analog voice, digital control | circuit | AMPS, TACS |
//! | 2G | digital | circuit | GSM, TDMA |
//! | 2G | digital | packet | CDMA |
//! | 2.5G | digital | packet | GPRS, EDGE |
//! | 3G | digital | packet | CDMA2000, WCDMA |
//!
//! §6.2 adds the quantitative hooks: GPRS "can support data rates of only
//! about 100 kbps", EDGE "is capable of supporting 384 kbps", W-CDMA
//! supports "384 Kbps or faster" (§5.1 on DoCoMo's FOMA), 3G brings QoS,
//! and 1G analog systems "will not play a significant role in mobile
//! commerce" — modelled here as offering no data service at all. The
//! summary (§8) notes cellular systems cover kilometres but at "much lower
//! bandwidth (less than 1 Mbps)" than WLANs for the pre-3G generations.

use simnet::{LinkParams, LossModel, SimDuration};

/// Cellular generation — Table 5 column 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Generation {
    /// First generation: analog voice with digital control channels.
    G1,
    /// Second generation: digital voice, circuit- or packet-switched data.
    G2,
    /// 2.5G: packet data overlays on 2G radio (GPRS, EDGE).
    G2_5,
    /// Third generation: packet-switched with QoS capability.
    G3,
}

impl std::fmt::Display for Generation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Generation::G1 => "1G",
            Generation::G2 => "2G",
            Generation::G2_5 => "2.5G",
            Generation::G3 => "3G",
        };
        f.write_str(s)
    }
}

/// Switching technique — Table 5 column 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Switching {
    /// A dedicated channel is set up per call; data sessions pay call-setup
    /// latency and hold the channel whether or not bytes flow.
    Circuit,
    /// Always-on, per-packet statistical multiplexing (what makes i-mode's
    /// "always-on" service possible — §5.1).
    Packet,
}

impl std::fmt::Display for Switching {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Switching::Circuit => "circuit-switched",
            Switching::Packet => "packet-switched",
        })
    }
}

/// A cellular standard from Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellularStandard {
    /// Advanced Mobile Phone System — 1G analog (North America).
    Amps,
    /// Total Access Communication System — 1G analog (Europe).
    Tacs,
    /// Global System for Mobile communications — 2G circuit-switched.
    Gsm,
    /// IS-136 TDMA — 2G circuit-switched (U.S. operators).
    Tdma,
    /// IS-95 CDMA — 2G (U.S. operators), packet-switched per Table 5.
    Cdma,
    /// General Packet Radio Service — 2.5G packet overlay on GSM.
    Gprs,
    /// Enhanced Data rates for Global Evolution — 2.5G, 384 kbps.
    Edge,
    /// CDMA2000 — 3G (Qualcomm), backward-compatible with IS-95.
    Cdma2000,
    /// Wideband CDMA / UMTS — 3G (Ericsson / European Union).
    Wcdma,
}

impl std::fmt::Display for CellularStandard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl CellularStandard {
    /// All Table 5 standards, generation order.
    pub const ALL: [CellularStandard; 9] = [
        CellularStandard::Amps,
        CellularStandard::Tacs,
        CellularStandard::Gsm,
        CellularStandard::Tdma,
        CellularStandard::Cdma,
        CellularStandard::Gprs,
        CellularStandard::Edge,
        CellularStandard::Cdma2000,
        CellularStandard::Wcdma,
    ];

    /// Conventional name.
    pub fn name(self) -> &'static str {
        match self {
            CellularStandard::Amps => "AMPS",
            CellularStandard::Tacs => "TACS",
            CellularStandard::Gsm => "GSM",
            CellularStandard::Tdma => "TDMA (IS-136)",
            CellularStandard::Cdma => "CDMA (IS-95)",
            CellularStandard::Gprs => "GPRS",
            CellularStandard::Edge => "EDGE",
            CellularStandard::Cdma2000 => "CDMA2000",
            CellularStandard::Wcdma => "WCDMA",
        }
    }

    /// Generation — Table 5 column 1.
    pub fn generation(self) -> Generation {
        match self {
            CellularStandard::Amps | CellularStandard::Tacs => Generation::G1,
            CellularStandard::Gsm | CellularStandard::Tdma | CellularStandard::Cdma => {
                Generation::G2
            }
            CellularStandard::Gprs | CellularStandard::Edge => Generation::G2_5,
            CellularStandard::Cdma2000 | CellularStandard::Wcdma => Generation::G3,
        }
    }

    /// True when the voice channel is analog (1G only) — Table 5 column 2.
    pub fn analog_voice(self) -> bool {
        self.generation() == Generation::G1
    }

    /// Switching technique — Table 5 column 3.
    pub fn switching(self) -> Switching {
        match self {
            CellularStandard::Amps
            | CellularStandard::Tacs
            | CellularStandard::Gsm
            | CellularStandard::Tdma => Switching::Circuit,
            CellularStandard::Cdma
            | CellularStandard::Gprs
            | CellularStandard::Edge
            | CellularStandard::Cdma2000
            | CellularStandard::Wcdma => Switching::Packet,
        }
    }

    /// Peak user data rate in bits per second; `None` for analog 1G, which
    /// offers no data service usable by mobile commerce.
    pub fn data_rate_bps(self) -> Option<u64> {
        match self {
            CellularStandard::Amps | CellularStandard::Tacs => None,
            CellularStandard::Gsm => Some(9_600),
            CellularStandard::Tdma => Some(9_600),
            CellularStandard::Cdma => Some(14_400),
            CellularStandard::Gprs => Some(100_000), // "about 100 kbps" (§6.2)
            CellularStandard::Edge => Some(384_000), // "capable of supporting 384 kbps"
            CellularStandard::Cdma2000 => Some(2_000_000),
            CellularStandard::Wcdma => Some(2_000_000), // "384Kbps or faster" (§5.1)
        }
    }

    /// Whether the standard offers quality-of-service classes (3G — §6.2:
    /// "3G systems with quality-of-service (QoS) capability").
    pub fn has_qos(self) -> bool {
        self.generation() == Generation::G3
    }

    /// Call/session-setup latency charged before the first byte can flow.
    ///
    /// Circuit-switched standards pay a multi-second call setup per data
    /// session; packet-switched standards are always-on and pay only an
    /// activation handshake.
    pub fn session_setup(self) -> SimDuration {
        match self.switching() {
            Switching::Circuit => SimDuration::from_millis(4_500),
            Switching::Packet => match self.generation() {
                Generation::G3 => SimDuration::from_millis(250),
                _ => SimDuration::from_millis(700),
            },
        }
    }

    /// One-way latency of the radio access network.
    ///
    /// Cellular RANs add tens to hundreds of milliseconds — far above the
    /// WLAN numbers — dropping with each generation.
    pub fn ran_latency(self) -> SimDuration {
        match self.generation() {
            Generation::G1 => SimDuration::from_millis(400),
            Generation::G2 => SimDuration::from_millis(300),
            Generation::G2_5 => SimDuration::from_millis(150),
            Generation::G3 => SimDuration::from_millis(80),
        }
    }

    /// Typical cell radius in metres — cellular coverage dwarfs WLAN (§8).
    pub fn cell_radius_m(self) -> f64 {
        match self.generation() {
            Generation::G1 => 10_000.0,
            Generation::G2 | Generation::G2_5 => 5_000.0,
            Generation::G3 => 2_000.0,
        }
    }

    /// Residual bit-error rate of the coded channel.
    pub fn ber(self) -> f64 {
        match self.generation() {
            Generation::G1 => 1e-3,
            Generation::G2 => 1e-5,
            Generation::G2_5 => 1e-5,
            Generation::G3 => 1e-6,
        }
    }

    /// Builds [`LinkParams`] for a data session on this standard, or `None`
    /// when the standard cannot carry data (analog 1G).
    pub fn link_params(self) -> Option<LinkParams> {
        let rate = self.data_rate_bps()?;
        Some(LinkParams {
            bandwidth_bps: rate,
            propagation: self.ran_latency(),
            queue_capacity: 64,
            loss: LossModel::BitError { ber: self.ber() },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_generations() {
        use CellularStandard::*;
        assert_eq!(Amps.generation(), Generation::G1);
        assert_eq!(Tacs.generation(), Generation::G1);
        assert_eq!(Gsm.generation(), Generation::G2);
        assert_eq!(Tdma.generation(), Generation::G2);
        assert_eq!(Cdma.generation(), Generation::G2);
        assert_eq!(Gprs.generation(), Generation::G2_5);
        assert_eq!(Edge.generation(), Generation::G2_5);
        assert_eq!(Cdma2000.generation(), Generation::G3);
        assert_eq!(Wcdma.generation(), Generation::G3);
    }

    #[test]
    fn table5_switching() {
        use CellularStandard::*;
        assert_eq!(Amps.switching(), Switching::Circuit);
        assert_eq!(Gsm.switching(), Switching::Circuit);
        assert_eq!(Tdma.switching(), Switching::Circuit);
        assert_eq!(Cdma.switching(), Switching::Packet);
        assert_eq!(Gprs.switching(), Switching::Packet);
        assert_eq!(Wcdma.switching(), Switching::Packet);
    }

    #[test]
    fn analog_1g_has_no_data_service() {
        assert!(CellularStandard::Amps.analog_voice());
        assert_eq!(CellularStandard::Amps.data_rate_bps(), None);
        assert!(CellularStandard::Amps.link_params().is_none());
        assert_eq!(CellularStandard::Tacs.data_rate_bps(), None);
    }

    #[test]
    fn paper_quoted_rates() {
        // §6.2: GPRS ≈ 100 kbps; EDGE 384 kbps; §5.1: W-CDMA ≥ 384 kbps.
        assert_eq!(CellularStandard::Gprs.data_rate_bps(), Some(100_000));
        assert_eq!(CellularStandard::Edge.data_rate_bps(), Some(384_000));
        assert!(CellularStandard::Wcdma.data_rate_bps().unwrap() >= 384_000);
    }

    #[test]
    fn rates_improve_with_generation() {
        let rate = |s: CellularStandard| s.data_rate_bps().unwrap_or(0);
        assert!(rate(CellularStandard::Gsm) < rate(CellularStandard::Gprs));
        assert!(rate(CellularStandard::Gprs) < rate(CellularStandard::Edge));
        assert!(rate(CellularStandard::Edge) < rate(CellularStandard::Wcdma));
    }

    #[test]
    fn pre_3g_is_below_1mbps() {
        // §8: cellular "less than 1 Mbps" vs Wi-Fi's 11 Mbps (pre-3G view).
        for s in CellularStandard::ALL {
            if s.generation() < Generation::G3 {
                assert!(s.data_rate_bps().unwrap_or(0) < 1_000_000, "{s}");
            }
        }
    }

    #[test]
    fn qos_is_a_3g_property() {
        for s in CellularStandard::ALL {
            assert_eq!(s.has_qos(), s.generation() == Generation::G3, "{s}");
        }
    }

    #[test]
    fn circuit_setup_dwarfs_packet_setup() {
        let circuit = CellularStandard::Gsm.session_setup();
        let packet25 = CellularStandard::Gprs.session_setup();
        let packet3g = CellularStandard::Wcdma.session_setup();
        assert!(circuit.as_millis() > 5 * packet25.as_millis());
        assert!(packet25 > packet3g);
    }

    #[test]
    fn cellular_range_dwarfs_wlan_but_latency_is_worse() {
        use crate::wlan::WlanStandard;
        let gsm = CellularStandard::Gsm;
        assert!(gsm.cell_radius_m() > WlanStandard::Dot11b.range_m().1 * 10.0);
        assert!(gsm.ran_latency() > WlanStandard::Dot11b.access_delay() * 100);
    }

    #[test]
    fn link_params_carry_standard_rate() {
        let p = CellularStandard::Edge.link_params().unwrap();
        assert_eq!(p.bandwidth_bps, 384_000);
        assert!(matches!(p.loss, LossModel::BitError { .. }));
    }

    #[test]
    fn display_names() {
        assert_eq!(CellularStandard::Gprs.to_string(), "GPRS");
        assert_eq!(Generation::G2_5.to_string(), "2.5G");
        assert_eq!(Switching::Packet.to_string(), "packet-switched");
    }
}
