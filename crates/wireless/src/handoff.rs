//! Handoff blackouts.
//!
//! §5.2 of the paper: TCP over mobile networks "performs poorly due to
//! factors such as error-prone wireless channels, **frequent handoffs and
//! disconnections**". A handoff is modelled as a *blackout window*: for its
//! duration the radio link destroys every frame (the station is between
//! cells/APs and associated with neither); when it ends, listeners are
//! notified — which is precisely the "handoff completed" signal that the
//! fast-retransmission scheme of Caceres & Iftode \[2\] keys on.

use std::cell::RefCell;
use std::rc::Rc;

use simnet::link::{Link, LinkParams, LossModel, Wire};
use simnet::stats::Counter;
use simnet::{SimDuration, Simulator};

/// A handoff-completion callback.
type Listener = Rc<dyn Fn(&mut Simulator)>;

/// Drives periodic handoff blackouts on one or more links.
///
/// The controller alternates its links between their normal parameters
/// and a blackout configuration (same rate, loss = certain drop).
/// Observers registered with [`HandoffController::on_complete`] fire at
/// the end of each blackout.
pub struct HandoffController<M> {
    links: RefCell<Vec<Rc<Link<M>>>>,
    normal: RefCell<Vec<LinkParams>>,
    period: SimDuration,
    blackout: SimDuration,
    in_blackout: std::cell::Cell<bool>,
    /// Number of completed handoffs.
    pub completed: Counter,
    listeners: RefCell<Vec<Listener>>,
}

impl<M> std::fmt::Debug for HandoffController<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandoffController")
            .field("period", &self.period)
            .field("blackout", &self.blackout)
            .field("completed", &self.completed.get())
            .finish()
    }
}

impl<M: Wire + 'static> HandoffController<M> {
    /// Creates a controller that, once [started](Self::start), blacks out
    /// `link` for `blackout` every `period` of simulated time.
    ///
    /// The link must have an RNG attached (blackouts use a stochastic
    /// always-drop model).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < blackout < period`.
    pub fn new(link: Rc<Link<M>>, period: SimDuration, blackout: SimDuration) -> Rc<Self> {
        Self::over_links(vec![link], period, blackout)
    }

    /// Like [`HandoffController::new`] but blacking out several links in
    /// lockstep — typically the two directions of a bidirectional radio
    /// hop, which a real handoff severs together.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < blackout < period` and `links` is non-empty.
    pub fn over_links(
        links: Vec<Rc<Link<M>>>,
        period: SimDuration,
        blackout: SimDuration,
    ) -> Rc<Self> {
        assert!(!links.is_empty(), "need at least one link to control");
        assert!(!blackout.is_zero(), "blackout must be positive");
        assert!(
            blackout < period,
            "blackout must be shorter than the period"
        );
        let normal = links.iter().map(|l| l.params()).collect();
        Rc::new(HandoffController {
            links: RefCell::new(links),
            normal: RefCell::new(normal),
            period,
            blackout,
            in_blackout: std::cell::Cell::new(false),
            completed: Counter::new(),
            listeners: RefCell::new(Vec::new()),
        })
    }

    /// Registers a callback fired when each handoff completes.
    pub fn on_complete(&self, f: impl Fn(&mut Simulator) + 'static) {
        self.listeners.borrow_mut().push(Rc::new(f));
    }

    /// True while a blackout is in progress.
    pub fn in_blackout(&self) -> bool {
        self.in_blackout.get()
    }

    /// Begins the periodic handoff schedule. The first blackout starts one
    /// full period from now.
    pub fn start(self: &Rc<Self>, sim: &mut Simulator) {
        let ctl = Rc::clone(self);
        sim.schedule_in(self.period, move |sim| ctl.begin_blackout(sim));
    }

    /// Forces an immediate, out-of-schedule handoff: the serving AP/cell
    /// died and the station must re-associate elsewhere, severing the
    /// radio for `blackout`. Completion listeners fire when it ends, just
    /// as for a scheduled handoff — the fast-retransmit signal of \[2\]
    /// keys on fault-driven handoffs too. A no-op if the links are
    /// already blacked out (the radio cannot get more severed).
    ///
    /// Works on controllers that were never [started](Self::start): a
    /// purely fault-driven controller performs no periodic handoffs.
    pub fn force_handoff(self: &Rc<Self>, sim: &mut Simulator, blackout: SimDuration) {
        if self.in_blackout.get() {
            return;
        }
        self.sever(sim);
        obs::metrics::incr("wireless.handoffs_forced");
        let ctl = Rc::clone(self);
        sim.schedule_in(blackout, move |sim| ctl.restore(sim));
    }

    /// Cuts every controlled link and saves its parameters. The caller
    /// schedules the matching [`Self::restore`].
    fn sever(&self, sim: &mut Simulator) {
        let _ = sim;
        let links = self.links.borrow();
        let mut saved = self.normal.borrow_mut();
        for (i, link) in links.iter().enumerate() {
            saved[i] = link.params();
            let mut params = saved[i].clone();
            params.loss = LossModel::Bernoulli { p: 1.0 };
            link.set_params(params);
        }
        self.in_blackout.set(true);
    }

    /// Restores every controlled link and notifies listeners.
    fn restore(self: Rc<Self>, sim: &mut Simulator) {
        for (link, params) in self.links.borrow().iter().zip(self.normal.borrow().iter()) {
            link.set_params(params.clone());
        }
        self.in_blackout.set(false);
        self.completed.incr();
        obs::metrics::incr("wireless.handoffs");
        let listeners: Vec<_> = self.listeners.borrow().clone();
        for l in listeners {
            l(sim);
        }
    }

    fn begin_blackout(self: Rc<Self>, sim: &mut Simulator) {
        if self.in_blackout.get() {
            // A forced handoff is already severing the links; saving their
            // parameters now would capture the blackout as "normal". Skip
            // this cycle and stay on the periodic schedule.
            let ctl = Rc::clone(&self);
            sim.schedule_in(self.period, move |sim| ctl.begin_blackout(sim));
            return;
        }
        // `sever` captures the latest "normal" parameters so
        // distance-driven rate changes made since the last handoff
        // survive restoration.
        self.sever(sim);
        obs::metrics::incr("wireless.handoffs_begun");

        let ctl = Rc::clone(&self);
        sim.schedule_in(self.blackout, move |sim| ctl.end_blackout(sim));
    }

    fn end_blackout(self: Rc<Self>, sim: &mut Simulator) {
        let ctl = Rc::clone(&self);
        self.restore(sim);
        let wait = ctl.period - ctl.blackout;
        sim.schedule_in(wait, move |sim| ctl.begin_blackout(sim));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::rng::rng_for;
    use simnet::SimTime;
    use std::cell::RefCell;

    #[allow(clippy::type_complexity)]
    fn lossless_link() -> (Rc<Link<Vec<u8>>>, Rc<RefCell<Vec<u64>>>) {
        let link = Link::with_rng(
            LinkParams::reliable(1_000_000, SimDuration::from_millis(1)),
            rng_for(11, "handoff.test"),
        );
        let got: Rc<RefCell<Vec<u64>>> = Rc::default();
        let sink = Rc::clone(&got);
        link.set_receiver(move |sim, _msg: Vec<u8>| sink.borrow_mut().push(sim.now().as_millis()));
        (link, got)
    }

    #[test]
    fn frames_die_during_blackout_and_flow_after() {
        let mut sim = Simulator::new();
        let (link, got) = lossless_link();
        let ctl = HandoffController::new(
            Rc::clone(&link),
            SimDuration::from_secs(1),
            SimDuration::from_millis(200),
        );
        ctl.start(&mut sim);

        // Send a frame every 100 ms (offset 50 ms to dodge boundary ties).
        for i in 0..30u64 {
            let link = Rc::clone(&link);
            sim.schedule_at(SimTime::from_millis(i * 100 + 50), move |sim| {
                link.send(sim, vec![0u8; 100]);
            });
        }
        sim.run_until(SimTime::from_millis(3_300));

        // Blackouts cover [1000,1200) and [2000,2200) within the send span:
        // frames at 1050,1150 and 2050,2150 die (4 of 30).
        assert_eq!(got.borrow().len(), 26);
        assert_eq!(ctl.completed.get(), 3);
        assert_eq!(link.dropped_loss.get(), 4);
    }

    #[test]
    fn completion_listeners_fire_at_blackout_end() {
        let mut sim = Simulator::new();
        let (link, _got) = lossless_link();
        let ctl = HandoffController::new(
            link,
            SimDuration::from_secs(1),
            SimDuration::from_millis(100),
        );
        let times: Rc<RefCell<Vec<u64>>> = Rc::default();
        let t = Rc::clone(&times);
        ctl.on_complete(move |sim| t.borrow_mut().push(sim.now().as_millis()));
        ctl.start(&mut sim);
        sim.run_until(SimTime::from_millis(2_500));
        assert_eq!(*times.borrow(), vec![1_100, 2_100]);
    }

    #[test]
    fn restoration_preserves_params_changed_during_normal_operation() {
        let mut sim = Simulator::new();
        let (link, _got) = lossless_link();
        let ctl = HandoffController::new(
            Rc::clone(&link),
            SimDuration::from_secs(1),
            SimDuration::from_millis(100),
        );
        ctl.start(&mut sim);
        // Halfway through the first normal period, the rate drops.
        {
            let link = Rc::clone(&link);
            sim.schedule_at(SimTime::from_millis(500), move |_| {
                let mut p = link.params();
                p.bandwidth_bps = 500_000;
                link.set_params(p);
            });
        }
        sim.run_until(SimTime::from_millis(1_050));
        assert!(ctl.in_blackout());
        sim.run_until(SimTime::from_millis(1_200));
        assert!(!ctl.in_blackout());
        assert_eq!(link.params().bandwidth_bps, 500_000);
        assert_eq!(link.params().loss, LossModel::None);
    }

    #[test]
    fn forced_handoff_severs_now_and_reassociates_after_the_blackout() {
        let mut sim = Simulator::new();
        let (link, got) = lossless_link();
        let ctl = HandoffController::new(
            Rc::clone(&link),
            SimDuration::from_secs(3600),
            SimDuration::from_millis(1),
        );
        // Never start()ed: no periodic handoffs, only the forced one.
        {
            let ctl = Rc::clone(&ctl);
            sim.schedule_at(SimTime::from_millis(500), move |sim| {
                ctl.force_handoff(sim, SimDuration::from_millis(300));
            });
        }
        for i in 0..10u64 {
            let link = Rc::clone(&link);
            sim.schedule_at(SimTime::from_millis(i * 100 + 50), move |sim| {
                link.send(sim, vec![0u8; 100]);
            });
        }
        sim.run_until(SimTime::from_millis(1_100));
        // Frames at 550, 650 and 750 ms die in the forced blackout.
        assert_eq!(got.borrow().len(), 7);
        assert_eq!(ctl.completed.get(), 1);
        assert_eq!(link.params().loss, LossModel::None);
    }

    #[test]
    fn periodic_schedule_survives_an_overlapping_forced_handoff() {
        let mut sim = Simulator::new();
        let (link, _got) = lossless_link();
        let ctl = HandoffController::new(
            Rc::clone(&link),
            SimDuration::from_secs(1),
            SimDuration::from_millis(100),
        );
        ctl.start(&mut sim);
        // A forced blackout spanning the first periodic begin (at 1 s):
        // the periodic cycle must skip, not capture the severed link's
        // parameters as "normal" and black it out forever.
        {
            let ctl = Rc::clone(&ctl);
            sim.schedule_at(SimTime::from_millis(900), move |sim| {
                ctl.force_handoff(sim, SimDuration::from_millis(400));
            });
        }
        sim.run_until(SimTime::from_millis(1_400));
        assert!(!ctl.in_blackout());
        assert_eq!(link.params().loss, LossModel::None);
        // And the periodic schedule keeps going afterwards: the skipped
        // cycle re-arms one period later, blacking out [2000, 2100) ms.
        sim.run_until(SimTime::from_millis(2_050));
        assert!(ctl.in_blackout());
        sim.run_until(SimTime::from_millis(2_150));
        assert!(!ctl.in_blackout());
        assert_eq!(link.params().loss, LossModel::None);
    }

    #[test]
    #[should_panic(expected = "shorter than the period")]
    fn blackout_longer_than_period_panics() {
        let (link, _got) = lossless_link();
        HandoffController::new(
            link,
            SimDuration::from_millis(100),
            SimDuration::from_millis(100),
        );
    }
}
