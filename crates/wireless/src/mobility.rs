//! Station mobility and access-point fields.
//!
//! The paper's mobile stations "can be performed at anytime and from
//! anywhere" (§8) — which in simulation means positions that change. This
//! module provides a deterministic random-waypoint walk and a field of
//! access points with nearest-AP association, the two ingredients behind
//! every handoff experiment.

use rand::rngs::StdRng;
use rand::RngExt;

/// A point in the 2-D simulation plane, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Builds a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance_to(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Random-waypoint mobility: walk to a uniformly chosen target inside a
/// rectangle at constant speed, then pick a new target.
///
/// ```
/// use wireless::mobility::{Point, Waypoint};
/// use simnet::rng::rng_for;
///
/// let mut walk = Waypoint::new(Point::new(0.0, 0.0), 100.0, 100.0, 1.5,
///                              rng_for(1, "walk"));
/// let before = walk.position();
/// walk.advance(10.0); // ten seconds at 1.5 m/s
/// assert!(walk.position().distance_to(before) <= 15.0 + 1e-9);
/// ```
#[derive(Debug)]
pub struct Waypoint {
    position: Point,
    target: Point,
    width: f64,
    height: f64,
    speed_mps: f64,
    rng: StdRng,
}

impl Waypoint {
    /// Creates a walk starting at `start` inside a `width`×`height` box,
    /// moving at `speed_mps`.
    ///
    /// # Panics
    ///
    /// Panics if the box is degenerate or the speed is not positive.
    pub fn new(start: Point, width: f64, height: f64, speed_mps: f64, mut rng: StdRng) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "mobility box must have positive area"
        );
        assert!(speed_mps > 0.0, "speed must be positive");
        let target = Point::new(rng.random_range(0.0..width), rng.random_range(0.0..height));
        Waypoint {
            position: start,
            target,
            width,
            height,
            speed_mps,
            rng,
        }
    }

    /// Current position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// Walking speed in metres per second.
    pub fn speed_mps(&self) -> f64 {
        self.speed_mps
    }

    /// Advances the walk by `dt_secs` seconds, possibly passing through
    /// several waypoints, and returns the new position.
    pub fn advance(&mut self, dt_secs: f64) -> Point {
        assert!(dt_secs >= 0.0, "time cannot flow backwards");
        let mut budget = self.speed_mps * dt_secs;
        while budget > 0.0 {
            let to_target = self.position.distance_to(self.target);
            if to_target <= budget {
                self.position = self.target;
                budget -= to_target;
                self.target = Point::new(
                    self.rng.random_range(0.0..self.width),
                    self.rng.random_range(0.0..self.height),
                );
                if to_target == 0.0 && budget > 0.0 {
                    // Degenerate same-point target; burn a step to make progress.
                    continue;
                }
            } else {
                let frac = budget / to_target;
                self.position = Point::new(
                    self.position.x + (self.target.x - self.position.x) * frac,
                    self.position.y + (self.target.y - self.position.y) * frac,
                );
                budget = 0.0;
            }
        }
        self.position
    }
}

/// A set of access points (or base stations) with nearest-AP association.
#[derive(Debug, Clone, Default)]
pub struct ApField {
    aps: Vec<Point>,
}

impl ApField {
    /// Creates a field from AP positions.
    pub fn new(aps: Vec<Point>) -> Self {
        ApField { aps }
    }

    /// A regular 1-D corridor of `n` APs spaced `spacing` metres apart —
    /// the classic topology for handoff experiments.
    pub fn corridor(n: usize, spacing: f64) -> Self {
        ApField {
            aps: (0..n)
                .map(|i| Point::new(i as f64 * spacing, 0.0))
                .collect(),
        }
    }

    /// Number of APs in the field.
    pub fn len(&self) -> usize {
        self.aps.len()
    }

    /// True when the field has no APs.
    pub fn is_empty(&self) -> bool {
        self.aps.is_empty()
    }

    /// Position of AP `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn position(&self, index: usize) -> Point {
        self.aps[index]
    }

    /// The index and distance of the AP nearest to `p`, or `None` when the
    /// field is empty. Signal strength is monotone in distance, so nearest
    /// AP = strongest signal.
    pub fn nearest(&self, p: Point) -> Option<(usize, f64)> {
        self.aps
            .iter()
            .enumerate()
            .map(|(i, ap)| (i, ap.distance_to(p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are not NaN"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::rng::rng_for;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn walk_respects_speed_limit() {
        let mut w = Waypoint::new(Point::default(), 200.0, 200.0, 2.0, rng_for(3, "walk"));
        let mut prev = w.position();
        for _ in 0..100 {
            let next = w.advance(1.0);
            assert!(prev.distance_to(next) <= 2.0 + 1e-9);
            assert!(next.x >= 0.0 && next.x <= 200.0);
            assert!(next.y >= 0.0 && next.y <= 200.0);
            prev = next;
        }
    }

    #[test]
    fn walk_is_deterministic_per_seed() {
        let run = |seed| {
            let mut w = Waypoint::new(Point::default(), 100.0, 100.0, 1.0, rng_for(seed, "walk"));
            for _ in 0..50 {
                w.advance(3.0);
            }
            let p = w.position();
            (p.x, p.y)
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn walk_eventually_moves() {
        let mut w = Waypoint::new(Point::default(), 100.0, 100.0, 1.0, rng_for(5, "walk"));
        w.advance(30.0);
        assert!(w.position().distance_to(Point::default()) > 0.0);
    }

    #[test]
    fn corridor_nearest_ap_switches_at_midpoint() {
        let field = ApField::corridor(3, 100.0);
        assert_eq!(field.len(), 3);
        assert_eq!(field.nearest(Point::new(10.0, 0.0)).unwrap().0, 0);
        assert_eq!(field.nearest(Point::new(60.0, 0.0)).unwrap().0, 1);
        assert_eq!(field.nearest(Point::new(160.0, 0.0)).unwrap().0, 2);
    }

    #[test]
    fn empty_field_has_no_nearest() {
        assert!(ApField::default().nearest(Point::default()).is_none());
        assert!(ApField::default().is_empty());
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_panics() {
        Waypoint::new(Point::default(), 10.0, 10.0, 0.0, rng_for(0, "walk"));
    }
}
