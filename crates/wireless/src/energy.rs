//! Radio energy accounting.
//!
//! §8 of the paper: mobile stations are "limited by … low battery power".
//! This module prices every transmitted and received byte in joules so the
//! station model (`station` crate) can run a battery down and experiments
//! can report energy per transaction. Figures are representative of
//! early-2000s radios (order-of-magnitude faithful; relative ordering
//! between standards is what the experiments rely on).

use crate::cellular::CellularStandard;
use crate::wlan::WlanStandard;

/// Joule costs of using a radio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy to transmit one byte.
    pub tx_j_per_byte: f64,
    /// Energy to receive one byte.
    pub rx_j_per_byte: f64,
    /// Idle listening power in watts.
    pub idle_w: f64,
}

impl EnergyModel {
    /// Energy model for a WLAN standard.
    ///
    /// Bluetooth is the low-power PAN radio; 5 GHz OFDM radios burn more
    /// than the 2.4 GHz family but move bits faster, so their per-byte
    /// cost ends up lowest.
    pub fn wlan(standard: WlanStandard) -> Self {
        match standard {
            WlanStandard::Bluetooth => EnergyModel {
                tx_j_per_byte: 1.0e-6,
                rx_j_per_byte: 0.5e-6,
                idle_w: 0.01,
            },
            WlanStandard::Dot11b => EnergyModel {
                tx_j_per_byte: 2.0e-6,
                rx_j_per_byte: 1.4e-6,
                idle_w: 0.8,
            },
            WlanStandard::Dot11a | WlanStandard::HyperLan2 => EnergyModel {
                tx_j_per_byte: 0.6e-6,
                rx_j_per_byte: 0.45e-6,
                idle_w: 1.0,
            },
            WlanStandard::Dot11g => EnergyModel {
                tx_j_per_byte: 0.7e-6,
                rx_j_per_byte: 0.5e-6,
                idle_w: 0.9,
            },
        }
    }

    /// Energy model for a cellular standard.
    ///
    /// Cellular radios transmit at far higher power (reaching a tower
    /// kilometres away) and at far lower bit rates, so per-byte costs are
    /// orders of magnitude above WLAN.
    pub fn cellular(standard: CellularStandard) -> Self {
        use crate::cellular::Generation::*;
        match standard.generation() {
            G1 => EnergyModel {
                tx_j_per_byte: 2.0e-3,
                rx_j_per_byte: 1.0e-3,
                idle_w: 0.5,
            },
            G2 => EnergyModel {
                tx_j_per_byte: 8.0e-4,
                rx_j_per_byte: 3.0e-4,
                idle_w: 0.25,
            },
            G2_5 => EnergyModel {
                tx_j_per_byte: 3.0e-4,
                rx_j_per_byte: 1.0e-4,
                idle_w: 0.3,
            },
            G3 => EnergyModel {
                tx_j_per_byte: 5.0e-5,
                rx_j_per_byte: 2.0e-5,
                idle_w: 0.4,
            },
        }
    }

    /// Joules to transmit `bytes` bytes.
    pub fn tx_cost(&self, bytes: u64) -> f64 {
        self.tx_j_per_byte * bytes as f64
    }

    /// Joules to receive `bytes` bytes.
    pub fn rx_cost(&self, bytes: u64) -> f64 {
        self.rx_j_per_byte * bytes as f64
    }

    /// Joules burned idling for `secs` seconds.
    pub fn idle_cost(&self, secs: f64) -> f64 {
        self.idle_w * secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bluetooth_is_the_low_power_radio() {
        let bt = EnergyModel::wlan(WlanStandard::Bluetooth);
        for other in [
            WlanStandard::Dot11b,
            WlanStandard::Dot11a,
            WlanStandard::Dot11g,
        ] {
            let m = EnergyModel::wlan(other);
            assert!(bt.idle_w < m.idle_w / 10.0, "{other}");
        }
    }

    #[test]
    fn cellular_bytes_cost_more_than_wlan_bytes() {
        let wifi = EnergyModel::wlan(WlanStandard::Dot11b);
        let gprs = EnergyModel::cellular(CellularStandard::Gprs);
        assert!(gprs.tx_j_per_byte > 10.0 * wifi.tx_j_per_byte);
    }

    #[test]
    fn newer_generations_are_more_efficient_per_byte() {
        let g2 = EnergyModel::cellular(CellularStandard::Gsm);
        let g25 = EnergyModel::cellular(CellularStandard::Gprs);
        let g3 = EnergyModel::cellular(CellularStandard::Wcdma);
        assert!(g2.tx_j_per_byte > g25.tx_j_per_byte);
        assert!(g25.tx_j_per_byte > g3.tx_j_per_byte);
    }

    #[test]
    fn costs_scale_linearly() {
        let m = EnergyModel::wlan(WlanStandard::Dot11b);
        assert!((m.tx_cost(1000) - 2.0e-3).abs() < 1e-12);
        assert!((m.rx_cost(1000) - 1.4e-3).abs() < 1e-12);
        assert!((m.idle_cost(10.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn tx_always_costs_at_least_rx() {
        for s in WlanStandard::ALL {
            let m = EnergyModel::wlan(s);
            assert!(m.tx_j_per_byte >= m.rx_j_per_byte, "{s}");
        }
        for s in CellularStandard::ALL {
            let m = EnergyModel::cellular(s);
            assert!(m.tx_j_per_byte >= m.rx_j_per_byte, "{s}");
        }
    }
}
