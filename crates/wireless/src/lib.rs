#![warn(missing_docs)]
//! # wireless — WLAN and cellular network models
//!
//! Component (iv) of the paper's six-component mobile commerce system:
//! *wireless networks*. This crate models, as executable channel behaviour,
//! the two network families the paper surveys:
//!
//! * **Wireless LANs** (§6.1, Table 4): Bluetooth, 802.11b (Wi-Fi),
//!   802.11a, HyperLAN2 and 802.11g — each with its maximum data rate,
//!   typical range, modulation scheme and frequency band, turned into a
//!   rate-versus-distance curve and a distance-dependent bit-error model.
//! * **Cellular WWANs** (§6.2, Table 5): 1G (AMPS, TACS), 2G (GSM, TDMA,
//!   CDMA), 2.5G (GPRS, EDGE) and 3G (CDMA2000, WCDMA) — each with its
//!   generation, radio type, switching technique and data rate, including
//!   the circuit-switched call-setup penalty that separates 2G from the
//!   always-on packet generations.
//!
//! On top of the standards sit the dynamic pieces every mobile commerce
//! transaction rides on: [`radio::RadioLink`] (a [`simnet::Link`] whose
//! parameters follow the station's distance), [`mobility::Waypoint`]
//! mobility, access-point association and [`handoff::HandoffController`]
//! blackouts that the TCP variants in `transport` must survive.

pub mod adhoc;
pub mod cell;
pub mod cellular;
pub mod energy;
pub mod handoff;
pub mod mobility;
pub mod radio;
pub mod wlan;

pub use adhoc::AdHocNetwork;
pub use cell::{AirtimeGrant, CellAirtime};
pub use cellular::{CellularStandard, Generation, Switching};
pub use handoff::HandoffController;
pub use radio::RadioLink;
pub use wlan::{Band, Modulation, WlanStandard};
