//! A radio channel whose quality follows the station's position.
//!
//! [`RadioLink`] couples a [`simnet::Link`] to a [`WlanStandard`]: as the
//! station's distance from the access point changes, the link's bandwidth
//! steps down the standard's auto-rate tiers and its bit-error rate rises,
//! exactly as [`WlanStandard::rate_at`] / [`WlanStandard::ber_at`]
//! prescribe. Out of range, the channel becomes useless (BER 0.5) rather
//! than cleanly absent — matching how a fading radio actually fails.

use std::rc::Rc;

use simnet::link::{Link, LinkParams, LossModel, Wire};
use simnet::rng::rng_for;
use simnet::Simulator;

use crate::wlan::WlanStandard;

/// A frame on the air: payload plus MAC/PHY overhead.
#[derive(Debug, Clone)]
pub struct Framed<M> {
    /// The carried message.
    pub inner: M,
    overhead: usize,
}

impl<M: Wire> Wire for Framed<M> {
    fn wire_size(&self) -> usize {
        self.inner.wire_size() + self.overhead
    }
}

/// A distance-aware wireless channel for messages of type `M`.
///
/// ```
/// use simnet::Simulator;
/// use wireless::{RadioLink, WlanStandard};
///
/// let mut sim = Simulator::new();
/// let radio: std::rc::Rc<RadioLink<Vec<u8>>> =
///     RadioLink::new(WlanStandard::Dot11b, 10.0, 42);
/// assert_eq!(radio.current_rate_bps(), 11_000_000);
/// radio.set_distance(95.0); // near the coverage edge
/// assert_eq!(radio.current_rate_bps(), 1_000_000);
/// # let _ = &mut sim;
/// ```
pub struct RadioLink<M> {
    link: Rc<Link<Framed<M>>>,
    standard: WlanStandard,
    distance_m: std::cell::Cell<f64>,
}

impl<M: Wire + 'static> std::fmt::Debug for RadioLink<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RadioLink")
            .field("standard", &self.standard.name())
            .field("distance_m", &self.distance_m.get())
            .field("rate_bps", &self.link.params().bandwidth_bps)
            .finish()
    }
}

impl<M: Wire + 'static> RadioLink<M> {
    /// Creates a channel on `standard` with the station `distance_m` metres
    /// from the access point. `seed` drives the loss process.
    ///
    /// # Panics
    ///
    /// Panics if `distance_m` is negative.
    pub fn new(standard: WlanStandard, distance_m: f64, seed: u64) -> Rc<Self> {
        assert!(distance_m >= 0.0, "distance must be non-negative");
        let params = Self::params_for(standard, distance_m);
        let link = Link::with_rng(params, rng_for(seed, "radio.loss"));
        Rc::new(RadioLink {
            link,
            standard,
            distance_m: std::cell::Cell::new(distance_m),
        })
    }

    fn params_for(standard: WlanStandard, distance_m: f64) -> LinkParams {
        standard.link_params_at(distance_m).unwrap_or_else(|| {
            // Out of range: the radio still transmits at its lowest tier but
            // the channel destroys essentially every frame.
            LinkParams {
                bandwidth_bps: *standard.rate_tiers().last().expect("tiers nonempty"),
                propagation: standard.access_delay(),
                queue_capacity: 64,
                loss: LossModel::BitError { ber: 0.5 },
            }
        })
    }

    /// The WLAN standard this channel implements.
    pub fn standard(&self) -> WlanStandard {
        self.standard
    }

    /// Current distance from the access point in metres.
    pub fn distance_m(&self) -> f64 {
        self.distance_m.get()
    }

    /// Whether the station is inside the standard's coverage.
    pub fn in_range(&self) -> bool {
        self.standard.rate_at(self.distance_m.get()).is_some()
    }

    /// The PHY rate currently in effect (lowest tier when out of range).
    pub fn current_rate_bps(&self) -> u64 {
        self.link.params().bandwidth_bps
    }

    /// Moves the station, updating rate and error model.
    ///
    /// # Panics
    ///
    /// Panics if `distance_m` is negative.
    pub fn set_distance(&self, distance_m: f64) {
        assert!(distance_m >= 0.0, "distance must be non-negative");
        self.distance_m.set(distance_m);
        self.link
            .set_params(Self::params_for(self.standard, distance_m));
    }

    /// Sets the frame receiver (payloads are unwrapped from their frames).
    pub fn set_receiver(&self, receiver: impl Fn(&mut Simulator, M) + 'static) {
        self.link
            .set_receiver(move |sim, framed: Framed<M>| receiver(sim, framed.inner));
    }

    /// Transmits `msg`, charging the standard's per-frame overhead.
    pub fn send(self: &Rc<Self>, sim: &mut Simulator, msg: M) {
        let framed = Framed {
            inner: msg,
            overhead: self.standard.frame_overhead_bytes(),
        };
        self.link.send(sim, framed);
    }

    /// The underlying link, exposing its counters.
    #[allow(clippy::type_complexity)]
    pub fn link(&self) -> &Rc<Link<Framed<M>>> {
        &self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[allow(clippy::type_complexity)]
    fn radio_with_sink(
        standard: WlanStandard,
        distance: f64,
    ) -> (Rc<RadioLink<Vec<u8>>>, Rc<RefCell<Vec<usize>>>) {
        let radio = RadioLink::new(standard, distance, 7);
        let got: Rc<RefCell<Vec<usize>>> = Rc::default();
        let sink = Rc::clone(&got);
        radio.set_receiver(move |_sim, msg: Vec<u8>| sink.borrow_mut().push(msg.len()));
        (radio, got)
    }

    #[test]
    fn close_station_gets_full_rate_and_delivery() {
        let mut sim = Simulator::new();
        let (radio, got) = radio_with_sink(WlanStandard::Dot11b, 5.0);
        assert_eq!(radio.current_rate_bps(), 11_000_000);
        for _ in 0..50 {
            radio.send(&mut sim, vec![0u8; 500]);
        }
        sim.run();
        // BER 1e-6 on ~4000-bit frames: ≥ 95% delivery expected.
        assert!(got.borrow().len() >= 48, "delivered {}", got.borrow().len());
        // Payload is unwrapped from framing.
        assert!(got.borrow().iter().all(|&n| n == 500));
    }

    #[test]
    fn out_of_range_station_gets_nothing() {
        let mut sim = Simulator::new();
        let (radio, got) = radio_with_sink(WlanStandard::Bluetooth, 50.0);
        assert!(!radio.in_range());
        for _ in 0..50 {
            radio.send(&mut sim, vec![0u8; 200]);
        }
        sim.run();
        assert_eq!(got.borrow().len(), 0);
    }

    #[test]
    fn moving_changes_rate_dynamically() {
        let (radio, _got) = radio_with_sink(WlanStandard::Dot11g, 10.0);
        assert_eq!(radio.current_rate_bps(), 54_000_000);
        radio.set_distance(149.0);
        assert_eq!(radio.current_rate_bps(), 6_000_000);
        assert!((radio.distance_m() - 149.0).abs() < f64::EPSILON);
        radio.set_distance(10.0);
        assert_eq!(radio.current_rate_bps(), 54_000_000);
    }

    #[test]
    fn framing_overhead_is_charged_on_the_wire() {
        let mut sim = Simulator::new();
        let (radio, _got) = radio_with_sink(WlanStandard::Dot11b, 5.0);
        radio.send(&mut sim, vec![0u8; 500]);
        sim.run();
        assert_eq!(
            radio.link().bytes_delivered.get(),
            500 + WlanStandard::Dot11b.frame_overhead_bytes() as u64
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = Simulator::new();
            let (radio, got) = radio_with_sink(WlanStandard::Dot11b, 90.0);
            for _ in 0..200 {
                radio.send(&mut sim, vec![0u8; 700]);
            }
            sim.run();
            let delivered = got.borrow().len();
            delivered
        };
        assert_eq!(run(), run());
    }
}
