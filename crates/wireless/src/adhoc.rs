//! Ad hoc networks — §6.1.
//!
//! "If no APs are available, mobile devices can form a wireless ad hoc
//! network among themselves and exchange data packets or perform business
//! transactions as necessary."
//!
//! An [`AdHocNetwork`] manages a set of stations with positions: any two
//! inside the WLAN standard's coverage get a direct radio link (with the
//! rate and error model of that distance), and shortest-hop routes are
//! computed over the resulting topology so out-of-range peers reach each
//! other through intermediate stations. Moving a member re-forms links
//! and re-routes — the proactive flavour of ad hoc routing, sufficient
//! for the paper's "exchange data packets or perform business
//! transactions" scenario.

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use netstack::node::{Network, Node};
use netstack::{Ip, IpPacket, Subnet};
use simnet::link::Link;
use simnet::rng::rng_for_indexed;

use crate::mobility::Point;
use crate::wlan::WlanStandard;

/// The two directions of one peer-to-peer radio link.
type LinkPair = (Rc<Link<IpPacket>>, Rc<Link<IpPacket>>);

/// One station in the ad hoc network.
#[derive(Debug)]
struct Member {
    node: Rc<Node>,
    addr: Ip,
    position: Point,
}

/// A self-organising multi-hop network of mobile stations.
///
/// ```
/// use netstack::{Ip, Subnet};
/// use wireless::adhoc::AdHocNetwork;
/// use wireless::mobility::Point;
/// use wireless::WlanStandard;
///
/// let mut net = AdHocNetwork::new(WlanStandard::Dot11b, 7);
/// net.add_member("a", Ip::new(10, 1, 0, 1), Point::new(0.0, 0.0));
/// net.add_member("b", Ip::new(10, 1, 0, 2), Point::new(80.0, 0.0));
/// net.add_member("c", Ip::new(10, 1, 0, 3), Point::new(160.0, 0.0));
/// net.reform();
/// // a cannot reach c directly (160 m > 100 m), but can via b.
/// assert_eq!(net.hops(Ip::new(10, 1, 0, 1), Ip::new(10, 1, 0, 3)), Some(2));
/// ```
pub struct AdHocNetwork {
    standard: WlanStandard,
    seed: u64,
    members: Vec<Member>,
    /// Live links keyed by the (lower, higher) member-index pair.
    links: HashMap<(usize, usize), LinkPair>,
    link_counter: u64,
}

impl std::fmt::Debug for AdHocNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdHocNetwork")
            .field("standard", &self.standard.name())
            .field("members", &self.members.len())
            .field("links", &self.links.len())
            .finish()
    }
}

impl AdHocNetwork {
    /// Creates an empty ad hoc network on `standard`.
    pub fn new(standard: WlanStandard, seed: u64) -> Self {
        AdHocNetwork {
            standard,
            seed,
            members: Vec::new(),
            links: HashMap::new(),
            link_counter: 0,
        }
    }

    /// Adds a station at `position`, returning its network node.
    /// Call [`AdHocNetwork::reform`] afterwards to form links and routes.
    pub fn add_member(&mut self, name: &str, addr: Ip, position: Point) -> Rc<Node> {
        let node = Node::new(name);
        node.add_addr(addr);
        self.members.push(Member {
            node: Rc::clone(&node),
            addr,
            position,
        });
        node
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the network has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of live radio links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Moves member `index` to `position`. Call [`AdHocNetwork::reform`]
    /// afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn move_member(&mut self, index: usize, position: Point) {
        self.members[index].position = position;
    }

    /// Member `index`'s current position.
    pub fn position(&self, index: usize) -> Point {
        self.members[index].position
    }

    /// Re-forms the topology: creates links for pairs in coverage, tears
    /// down links for pairs that drifted apart, retunes surviving links to
    /// the current distance, and recomputes shortest-hop routes.
    pub fn reform(&mut self) {
        // Link formation / teardown / retuning.
        for i in 0..self.members.len() {
            for j in (i + 1)..self.members.len() {
                let distance = self.members[i]
                    .position
                    .distance_to(self.members[j].position);
                let in_range = self.standard.rate_at(distance).is_some();
                let key = (i, j);
                match (in_range, self.links.contains_key(&key)) {
                    (true, false) => {
                        let params = self
                            .standard
                            .link_params_at(distance)
                            .expect("in range implies params");
                        let ij = Link::with_rng(
                            params.clone(),
                            rng_for_indexed(self.seed, "adhoc.link", self.link_counter),
                        );
                        let ji = Link::with_rng(
                            params,
                            rng_for_indexed(self.seed, "adhoc.link", self.link_counter + 1),
                        );
                        self.link_counter += 2;
                        Network::connect_with_links(
                            &self.members[i].node,
                            self.members[i].addr,
                            &self.members[j].node,
                            self.members[j].addr,
                            Rc::clone(&ij),
                            Rc::clone(&ji),
                        );
                        self.links.insert(key, (ij, ji));
                    }
                    (false, true) => {
                        self.links.remove(&key);
                        self.members[i].node.disconnect(self.members[j].addr);
                        self.members[j].node.disconnect(self.members[i].addr);
                    }
                    (true, true) => {
                        let params = self
                            .standard
                            .link_params_at(distance)
                            .expect("in range implies params");
                        let (ij, ji) = &self.links[&key];
                        ij.set_params(params.clone());
                        ji.set_params(params);
                    }
                    (false, false) => {}
                }
            }
        }
        self.recompute_routes();
    }

    /// BFS over the live topology from `start`; returns hop counts and
    /// first-hop neighbours per reachable member index.
    fn bfs(&self, start: usize) -> HashMap<usize, (u32, usize)> {
        let mut adjacency: HashMap<usize, Vec<usize>> = HashMap::new();
        for &(i, j) in self.links.keys() {
            adjacency.entry(i).or_default().push(j);
            adjacency.entry(j).or_default().push(i);
        }
        let mut result: HashMap<usize, (u32, usize)> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back((start, 0u32, start));
        let mut seen = vec![false; self.members.len()];
        seen[start] = true;
        while let Some((at, hops, first)) = queue.pop_front() {
            if at != start {
                result.insert(at, (hops, first));
            }
            for &next in adjacency.get(&at).into_iter().flatten() {
                if !seen[next] {
                    seen[next] = true;
                    // The first hop is inherited, except for direct
                    // neighbours of the start, who are their own first hop.
                    let first_hop = if at == start { next } else { first };
                    queue.push_back((next, hops + 1, first_hop));
                }
            }
        }
        result
    }

    /// Recomputes and installs host routes for every (source, target) pair.
    fn recompute_routes(&mut self) {
        for i in 0..self.members.len() {
            // Drop all non-direct routes, keep the host routes `connect`
            // installed for direct neighbours (simplest: remove everything
            // for member addrs and re-add).
            for target in &self.members {
                self.members[i]
                    .node
                    .remove_route(Subnet::new(target.addr, 32));
            }
            let reachable = self.bfs(i);
            for (target, (_hops, first_hop)) in reachable {
                let via = self.members[first_hop].addr;
                self.members[i]
                    .node
                    .add_route(Subnet::new(self.members[target].addr, 32), via);
            }
        }
    }

    /// Hop count between two member addresses, or `None` if unreachable.
    pub fn hops(&self, from: Ip, to: Ip) -> Option<u32> {
        let from_idx = self.members.iter().position(|m| m.addr == from)?;
        let to_idx = self.members.iter().position(|m| m.addr == to)?;
        if from_idx == to_idx {
            return Some(0);
        }
        self.bfs(from_idx).get(&to_idx).map(|&(hops, _)| hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytesize_helpers::udp_sink;
    use netstack::{Payload, Protocol};
    use simnet::Simulator;

    /// Tiny helpers shared by the tests.
    mod bytesize_helpers {
        use super::*;
        use std::cell::RefCell;

        pub fn udp_sink(node: &Rc<Node>) -> Rc<RefCell<Vec<IpPacket>>> {
            let got: Rc<RefCell<Vec<IpPacket>>> = Rc::default();
            let sink = Rc::clone(&got);
            node.set_upper(Protocol::Udp, move |_sim, pkt| sink.borrow_mut().push(pkt));
            got
        }
    }

    fn ip(d: u8) -> Ip {
        Ip::new(10, 9, 0, d)
    }

    /// a — b — c in a line, a↔c out of direct 802.11b range.
    fn line() -> (AdHocNetwork, Rc<Node>, Rc<Node>, Rc<Node>) {
        let mut net = AdHocNetwork::new(WlanStandard::Dot11b, 3);
        let a = net.add_member("a", ip(1), Point::new(0.0, 0.0));
        let b = net.add_member("b", ip(2), Point::new(80.0, 0.0));
        let c = net.add_member("c", ip(3), Point::new(160.0, 0.0));
        net.reform();
        (net, a, b, c)
    }

    #[test]
    fn topology_links_only_pairs_in_coverage() {
        let (net, ..) = line();
        assert_eq!(net.link_count(), 2); // a–b and b–c, not a–c
        assert_eq!(net.hops(ip(1), ip(2)), Some(1));
        assert_eq!(net.hops(ip(1), ip(3)), Some(2));
        assert_eq!(net.hops(ip(1), ip(1)), Some(0));
    }

    #[test]
    fn packets_relay_through_the_middle_station() {
        let mut sim = Simulator::new();
        let (_net, a, b, c) = line();
        let got = udp_sink(&c);
        a.send(
            &mut sim,
            IpPacket::new(ip(1), ip(3), Protocol::Udp, Payload::new((), 200)),
        );
        sim.run();
        assert_eq!(got.borrow().len(), 1);
        assert_eq!(b.forwarded.get(), 1, "b relayed the packet");
        assert_eq!(got.borrow()[0].ttl, netstack::packet::DEFAULT_TTL - 1);
    }

    #[test]
    fn walking_apart_partitions_and_walking_back_heals() {
        let mut sim = Simulator::new();
        let (mut net, a, _b, c) = line();
        let got = udp_sink(&c);

        // c walks far away: unreachable even via b.
        net.move_member(2, Point::new(400.0, 0.0));
        net.reform();
        assert_eq!(net.hops(ip(1), ip(3)), None);
        a.send(
            &mut sim,
            IpPacket::new(ip(1), ip(3), Protocol::Udp, Payload::new((), 64)),
        );
        sim.run();
        assert_eq!(got.borrow().len(), 0);

        // c comes back next to a: now a direct single hop.
        net.move_member(2, Point::new(30.0, 0.0));
        net.reform();
        assert_eq!(net.hops(ip(1), ip(3)), Some(1));
        a.send(
            &mut sim,
            IpPacket::new(ip(1), ip(3), Protocol::Udp, Payload::new((), 64)),
        );
        sim.run();
        assert_eq!(got.borrow().len(), 1);
    }

    #[test]
    fn link_quality_follows_pair_distance() {
        let mut net = AdHocNetwork::new(WlanStandard::Dot11b, 4);
        net.add_member("a", ip(1), Point::new(0.0, 0.0));
        net.add_member("b", ip(2), Point::new(10.0, 0.0));
        net.reform();
        let (ab, _) = net
            .links
            .values()
            .next()
            .map(|(x, y)| (Rc::clone(x), Rc::clone(y)))
            .unwrap();
        assert_eq!(ab.params().bandwidth_bps, 11_000_000);
        // b drifts to the edge: the same link steps down its rate.
        net.move_member(1, Point::new(95.0, 0.0));
        net.reform();
        assert_eq!(net.link_count(), 1);
        assert_eq!(ab.params().bandwidth_bps, 1_000_000);
    }

    #[test]
    fn bigger_meshes_route_around_gaps() {
        // A 2×2 grid plus one far node reachable only through the chain.
        let mut net = AdHocNetwork::new(WlanStandard::Dot11b, 5);
        net.add_member("n0", ip(10), Point::new(0.0, 0.0));
        net.add_member("n1", ip(11), Point::new(90.0, 0.0));
        net.add_member("n2", ip(12), Point::new(90.0, 90.0));
        net.add_member("n3", ip(13), Point::new(180.0, 90.0));
        net.reform();
        // n0–n3 is ~200 m apart: must multi-hop.
        let hops = net.hops(ip(10), ip(13)).expect("connected mesh");
        assert!(hops >= 2, "hops {hops}");
    }

    #[test]
    fn business_transaction_runs_over_the_ad_hoc_mesh() {
        // §6.1's scenario end-to-end: a TCP exchange between two stations
        // with no AP anywhere, relayed by a peer.
        use transport_smoke::run_tcp_over;
        run_tcp_over();
    }

    /// Isolated so the `transport` dev-dependency stays test-only.
    mod transport_smoke {
        use super::*;

        pub fn run_tcp_over() {
            let mut sim = Simulator::new();
            let (_net, a, _b, c) = line();
            let trace = simnet::trace::Trace::bounded(64);
            let tcp_a = transport::Tcp::install(Rc::clone(&a), trace.clone());
            let tcp_c = transport::Tcp::install(Rc::clone(&c), trace);
            let received: Rc<std::cell::RefCell<Vec<u8>>> = Rc::default();
            {
                let received = Rc::clone(&received);
                tcp_c.listen(9, move |_sim, conn| {
                    let received = Rc::clone(&received);
                    conn.on_data(move |_sim, data| received.borrow_mut().extend_from_slice(&data));
                });
            }
            let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 247) as u8).collect();
            let conn = tcp_a.connect(&mut sim, ip(1), transport::SocketAddr::new(ip(3), 9));
            conn.send(&mut sim, &payload);
            sim.run();
            assert_eq!(*received.borrow(), payload, "transaction survived the mesh");
        }
    }
}
