//! Shared-cell airtime: many stations, one medium.
//!
//! A wireless cell — one access point's coverage area, or one cellular
//! sector — is a *shared* medium: only one station transmits usefully at
//! a time, and everyone else's frames queue behind it. The per-user
//! channel models in [`radio`](crate::radio) and [`wlan`](crate::wlan)
//! answer "how long does this transfer take on an idle medium?"; this
//! module answers the population question layered on top: "how long does
//! the station *also* wait for the medium?".
//!
//! [`CellAirtime`] wraps a deterministic FCFS server
//! ([`simnet::contend::FcfsServer`]) over the cell's airtime. The fleet
//! engine admits each transaction's air legs (uplink, downlink) at the
//! instants its analytic walk reaches them; the grant's wait is the
//! medium-access delay the station suffers. FCFS-by-arrival is the
//! deterministic stand-in for CSMA/CA fairness: it conserves total
//! airtime and serves stations in a canonical order, which keeps
//! fixed-seed fleets byte-identical at any thread count.

use simnet::contend::FcfsServer;

/// The outcome of asking a cell for airtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AirtimeGrant {
    /// When the transfer actually starts on the medium.
    pub start_ns: u64,
    /// Medium-access delay: `start_ns − arrival`.
    pub wait_ns: u64,
}

/// One cell's shared airtime, serving stations first-come-first-served.
#[derive(Debug, Clone, Default)]
pub struct CellAirtime {
    server: FcfsServer,
}

impl CellAirtime {
    /// A cell whose medium has been idle since t = 0.
    pub fn new() -> Self {
        CellAirtime::default()
    }

    /// Requests `airtime_ns` of medium starting no earlier than
    /// `arrival_ns`. Zero airtime is granted instantly without touching
    /// the medium, so transactions with no air leg add no contention.
    pub fn request(&mut self, arrival_ns: u64, airtime_ns: u64) -> AirtimeGrant {
        let wait_ns = self.server.admit(arrival_ns, airtime_ns);
        AirtimeGrant {
            start_ns: arrival_ns + wait_ns,
            wait_ns,
        }
    }

    /// Total airtime granted so far, nanoseconds.
    pub fn busy_ns(&self) -> u64 {
        self.server.busy_ns()
    }

    /// Transfers granted (zero-airtime requests are not counted).
    pub fn transfers(&self) -> u64 {
        self.server.jobs()
    }

    /// Transfers that found the medium busy and had to defer.
    pub fn deferred(&self) -> u64 {
        self.server.waited_jobs()
    }

    /// Utilisation of the medium over `[0, horizon_ns]`.
    pub fn utilisation(&self, horizon_ns: u64) -> f64 {
        if horizon_ns == 0 {
            return 0.0;
        }
        self.busy_ns() as f64 / horizon_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_lone_station_never_defers() {
        let mut cell = CellAirtime::new();
        let a = cell.request(0, 1_000);
        let b = cell.request(5_000, 2_000);
        assert_eq!(a.wait_ns, 0);
        assert_eq!(b.wait_ns, 0);
        assert_eq!(cell.deferred(), 0);
        assert_eq!(cell.busy_ns(), 3_000);
    }

    #[test]
    fn overlapping_stations_queue_on_the_medium() {
        let mut cell = CellAirtime::new();
        assert_eq!(cell.request(0, 10_000).wait_ns, 0);
        let second = cell.request(1_000, 10_000);
        assert_eq!(second.wait_ns, 9_000);
        assert_eq!(second.start_ns, 10_000);
        let third = cell.request(1_500, 10_000);
        assert_eq!(third.start_ns, 20_000, "FCFS behind the second station");
        assert_eq!(cell.deferred(), 2);
    }

    #[test]
    fn utilisation_is_busy_over_horizon() {
        let mut cell = CellAirtime::new();
        cell.request(0, 250);
        cell.request(0, 250);
        assert!((cell.utilisation(1_000) - 0.5).abs() < 1e-12);
        assert_eq!(cell.utilisation(0), 0.0);
    }
}
