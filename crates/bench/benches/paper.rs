//! Criterion benches: one group per paper artefact.
//!
//! Each bench times regenerating an experiment (the simulated metrics are
//! printed by `cargo run -p bench --bin report`; here we keep the
//! experiments honest about wall-clock cost and catch performance
//! regressions in the simulator itself).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::{ablations, experiments, tcpx};

fn bench_fig1_fig2(c: &mut Criterion) {
    c.bench_function("fig1_fig2/ec_vs_mc_40txns", |b| {
        b.iter(|| black_box(experiments::fig1_fig2(black_box(40))))
    });
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/eight_apps_3sessions", |b| {
        b.iter(|| black_box(experiments::table1(black_box(3))))
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2/five_devices_3sessions", |b| {
        b.iter(|| black_box(experiments::table2(black_box(3))))
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3/wap_vs_imode_3sessions", |b| {
        b.iter(|| black_box(experiments::table3(black_box(3))))
    });
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("table4/wlan_sweep_50kB", |b| {
        b.iter(|| black_box(experiments::table4(black_box(50_000))))
    });
}

fn bench_table5(c: &mut Criterion) {
    c.bench_function("table5/cellular_generations", |b| {
        b.iter(|| black_box(experiments::table5()))
    });
}

fn bench_fleet_scale(c: &mut Criterion) {
    use mcommerce_core::{Category, FleetRunner, Scenario};
    let mut group = c.benchmark_group("f3_fleet");
    group.sample_size(10);
    let scenario = Scenario::new("bench")
        .app(Category::Commerce)
        .users(256)
        .seed(97);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("commerce_256users_{threads}thr"), |b| {
            b.iter(|| black_box(FleetRunner::new(scenario.clone()).threads(threads).run().report))
        });
    }
    group.finish();
}

fn bench_tcp_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("x1_tcp_variants");
    group.sample_size(10);
    for variant in tcpx::Variant::ALL {
        group.bench_function(format!("{variant:?}_150kB_ber1e-5"), |b| {
            let config = tcpx::TcpxConfig {
                bytes: 150_000,
                ber: 1e-5,
                handoff_period: None,
                ..Default::default()
            };
            b.iter(|| black_box(tcpx::run_one(variant, &config)))
        });
    }
    group.finish();
}

fn bench_requirements(c: &mut Criterion) {
    let mut group = c.benchmark_group("x2_requirements");
    group.sample_size(10);
    group.bench_function("all_five_checks", |b| {
        b.iter(|| black_box(experiments::independence()))
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("wbxml_on_off", |b| {
        b.iter(|| black_box(ablations::wbxml_ablation(2)))
    });
    group.bench_function("security_on_off", |b| {
        b.iter(|| black_box(ablations::security_ablation(2)))
    });
    group.bench_function("storage_flat_vs_embedded", |b| {
        b.iter(|| black_box(ablations::storage_ablation()))
    });
    group.bench_function("deck_adaptation", |b| {
        b.iter(|| black_box(ablations::pagination_ablation()))
    });
    group.bench_function("battery_lifetime_by_os", |b| {
        b.iter(|| black_box(ablations::battery_ablation()))
    });
    group.finish();
}

criterion_group!(
    paper,
    bench_fig1_fig2,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_table4,
    bench_table5,
    bench_fleet_scale,
    bench_tcp_variants,
    bench_requirements,
    bench_ablations
);
criterion_main!(paper);
