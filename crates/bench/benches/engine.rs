//! Criterion group `engine_throughput`: the scheduler microbenchmark
//! behind F4, timing the production timer-wheel engine against the
//! reference `BinaryHeap` engine on the identical timer storm.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::engine;

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    for (timers, hops) in [(1_024u64, 16u64), (8_192, 16)] {
        group.bench_function(format!("wheel_{timers}timers_{hops}hops"), |b| {
            b.iter(|| black_box(engine::wheel_throughput(black_box(timers), black_box(hops))))
        });
        group.bench_function(format!("heap_{timers}timers_{hops}hops"), |b| {
            b.iter(|| black_box(engine::heap_throughput(black_box(timers), black_box(hops))))
        });
    }
    group.finish();
}

criterion_group!(engine_throughput, bench_engine_throughput);
criterion_main!(engine_throughput);
