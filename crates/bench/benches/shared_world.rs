//! Criterion group `shared_world`: the shared-topology contention
//! engine across a population sweep.
//!
//! Every user in a `Topology::shared()` world contends for one cell,
//! one gateway and one host, so this measures the island event loop
//! itself — the `DetQueue` scheduling, the host/gateway swaps around
//! each transaction, and the post-hoc FCFS contention charging — not
//! the embarrassingly parallel isolated path F9 sweeps. The isolated
//! engine at the same smallest population runs alongside as the
//! baseline, making the contention machinery's cost visible directly.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcommerce_core::{Category, FleetRunner, Scenario, Topology};

fn scenario(users: u64) -> Scenario {
    Scenario::new("shared-bench")
        .app(Category::Commerce)
        .users(users)
        .sessions_per_user(1)
        .seed(97)
}

fn bench_shared_world(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared_world");
    group.sample_size(10);
    for users in [64u64, 256, 1_024] {
        group.bench_function(format!("shared_{users}users"), |b| {
            b.iter(|| {
                let run = FleetRunner::new(scenario(users))
                    .topology(Topology::shared())
                    .threads(1)
                    .run();
                black_box(run.report.summary.transactions())
            })
        });
    }
    // The isolated engine at the smallest population: the no-contention
    // baseline the shared numbers are read against.
    group.bench_function("isolated_64users", |b| {
        b.iter(|| {
            let run = FleetRunner::new(scenario(64)).threads(1).run();
            black_box(run.report.summary.transactions())
        })
    });
    group.finish();
}

criterion_group!(shared_world, bench_shared_world);
criterion_main!(shared_world);
