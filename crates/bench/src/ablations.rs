//! Ablation experiments: design choices DESIGN.md calls out, each turned
//! off in isolation to measure what it buys.
//!
//! * **A1 — WBXML binary encoding**: WAP with and without the tokenised
//!   over-the-air encoding (what the gateway's compression is worth).
//! * **A2 — WTLS transport security**: the §8 security layer's cost in
//!   bytes, latency and battery.
//! * **A3 — embedded store vs flat file**: §7's claim that "the flat file
//!   system … may not be able to adequately handle and manipulate data".
//! * **A4 — deck pagination budget**: the gateway's card-size budget
//!   against the device spectrum (why content adaptation must know the
//!   device).

use std::fmt;

use hostsite::db::Database;
use hostsite::HostComputer;
use markup::transcode::WmlOptions;
use mcommerce_core::apps::{Application, PaymentsApp, TravelApp};
use mcommerce_core::workload::{run_until_battery_dies, run_workload};
use mcommerce_core::{CommerceSystem, MiddlewareKind, SystemSpec, WiredPath, WirelessConfig};
use middleware::{MobileRequest, WapGateway};
use station::{DeviceProfile, EmbeddedStore, FlatFileStore};
use wireless::{CellularStandard, WlanStandard};

fn wifi(distance_m: f64) -> WirelessConfig {
    WirelessConfig::Wlan {
        standard: WlanStandard::Dot11b,
        distance_m,
    }
}

/// A labelled scalar-comparison row shared by the ablations.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Mean latency, seconds.
    pub latency_secs: f64,
    /// Mean over-the-air bytes per step.
    pub air_bytes: f64,
    /// Mean energy per step, joules.
    pub energy_j: f64,
}

impl fmt::Display for AblationRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<44} {:>9.1} ms {:>8.0} B {:>9.3} mJ",
            self.label,
            self.latency_secs * 1e3,
            self.air_bytes,
            self.energy_j * 1e3
        )
    }
}

/// A1 — WBXML on/off, on a slow link where air bytes matter.
pub fn wbxml_ablation(sessions: u64) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for (label, binary) in [
        ("WAP with WBXML (default)", true),
        ("WAP with textual WML", false),
    ] {
        let app = TravelApp;
        let mut host = HostComputer::new(Database::new(), 81);
        app.install(&mut host);
        let kind = if binary {
            MiddlewareKind::Wap
        } else {
            MiddlewareKind::WapTextual
        };
        let mut system = SystemSpec::new()
            .middleware(kind)
            .device(DeviceProfile::nokia_9290())
            .wireless(WirelessConfig::Cellular {
                standard: CellularStandard::Gprs,
            })
            .wired(WiredPath::wan())
            .seed(82)
            .build(host);
        let summary = run_workload(&mut system, &app, sessions, 83);
        assert_eq!(summary.succeeded, summary.attempted, "{label}");
        rows.push(AblationRow {
            label: label.to_owned(),
            latency_secs: summary.latency_mean,
            air_bytes: summary.air_bytes_mean,
            energy_j: summary.energy_mean_j,
        });
    }
    rows
}

/// A2 — WTLS security on/off, per network.
pub fn security_ablation(sessions: u64) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for network in [
        wifi(20.0),
        WirelessConfig::Cellular {
            standard: CellularStandard::Gprs,
        },
    ] {
        for secure in [false, true] {
            let app = PaymentsApp::new();
            let mut host = HostComputer::new(Database::new(), 84);
            app.install(&mut host);
            let mut system = SystemSpec::new()
                .middleware(MiddlewareKind::Wap)
                .device(DeviceProfile::ipaq_h3870())
                .wireless(network)
                .wired(WiredPath::wan())
                .seed(85)
                .secure(secure)
                .build(host);
            let summary = run_workload(&mut system, &app, sessions, 86);
            assert_eq!(summary.succeeded, summary.attempted);
            rows.push(AblationRow {
                label: format!(
                    "{} — {}",
                    network.name(),
                    if secure { "WTLS secured" } else { "plaintext" }
                ),
                latency_secs: summary.latency_mean,
                air_bytes: summary.air_bytes_mean,
                energy_j: summary.energy_mean_j,
            });
        }
    }
    rows
}

/// One storage-ablation measurement.
#[derive(Debug, Clone)]
pub struct StorageRow {
    /// Store kind.
    pub label: String,
    /// Records in the store when measured.
    pub records: usize,
    /// Records touched to look up the *oldest* key.
    pub touches_oldest: usize,
    /// Records touched to conclude a key is *missing*.
    pub touches_missing: usize,
}

impl fmt::Display for StorageRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} n={:>5}: oldest lookup touches {:>5}, missing key touches {:>5}",
            self.label, self.records, self.touches_oldest, self.touches_missing
        )
    }
}

/// A3 — embedded store vs flat file: access cost as the store grows.
pub fn storage_ablation() -> Vec<StorageRow> {
    let mut rows = Vec::new();
    for n in [100usize, 1_000, 10_000] {
        let mut flat = FlatFileStore::new();
        let mut embedded = EmbeddedStore::new(1 << 22);
        for i in 0..n {
            flat.put(&format!("key-{i}"), "v");
            embedded.put(&format!("key-{i}"), "v");
        }
        let (_, flat_old) = flat.get("key-0");
        let (_, flat_miss) = flat.get("absent");
        let (_, emb_old) = embedded.get("key-0");
        let (_, emb_miss) = embedded.get("absent");
        rows.push(StorageRow {
            label: "flat file".into(),
            records: n,
            touches_oldest: flat_old.records_touched,
            touches_missing: flat_miss.records_touched,
        });
        rows.push(StorageRow {
            label: "embedded store".into(),
            records: n,
            touches_oldest: emb_old.records_touched,
            touches_missing: emb_miss.records_touched,
        });
    }
    rows
}

/// One deck-adaptation measurement.
#[derive(Debug, Clone)]
pub struct PaginationRow {
    /// Deck-size cap the gateway adapted to (`None` = no adaptation).
    pub deck_cap_bytes: Option<usize>,
    /// Whether the Palm i705 (8 KB content budget) could load the deck.
    pub palm_loads: bool,
    /// Total bytes over the air for the page.
    pub air_bytes: u64,
}

impl fmt::Display for PaginationRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.deck_cap_bytes {
            Some(cap) => write!(
                f,
                "deck cap {:>6} B: palm loads = {:<5}, air bytes {:>6}",
                cap, self.palm_loads, self.air_bytes
            ),
            None => write!(
                f,
                "no deck adaptation: palm loads = {:<5}, air bytes {:>6}",
                self.palm_loads, self.air_bytes
            ),
        }
    }
}

/// A4 — deck adaptation sweep: a long lesson page against the smallest
/// device. Without a deck cap the gateway ships the whole translated
/// deck, which the Palm's 8 KB budget rejects; with device-aware
/// adaptation the page loads (truncated).
pub fn pagination_ablation() -> Vec<PaginationRow> {
    [Some(2_000usize), Some(4_000), Some(7_500), None]
        .into_iter()
        .map(|cap| {
            let mut host = HostComputer::new(Database::new(), 87);
            let paragraphs: Vec<markup::Node> = (0..120)
                .map(|i| {
                    markup::html::p(&format!(
                        "Lesson paragraph {i}: content adaptation must respect device limits"
                    ))
                    .into()
                })
                .collect();
            host.web.static_page(
                "/lesson",
                markup::html::page("Lesson", paragraphs).to_markup(),
            );
            let options = WmlOptions {
                max_deck_bytes: cap,
                ..Default::default()
            };
            let mut system = SystemSpec::new()
                .device(DeviceProfile::palm_i705())
                .wireless(wifi(15.0))
                .wired(WiredPath::wan())
                .seed(88)
                .build(host);
            system.set_middleware(Box::new(WapGateway::new(options)));
            let report = system.execute(&MobileRequest::get("/lesson"));
            PaginationRow {
                deck_cap_bytes: cap,
                palm_loads: report.success,
                air_bytes: report.air_bytes_down,
            }
        })
        .collect()
}

/// One battery-lifetime measurement.
#[derive(Debug, Clone)]
pub struct BatteryRow {
    /// Device name.
    pub device: String,
    /// Operating system.
    pub os: String,
    /// Battery capacity in joules.
    pub capacity_j: f64,
    /// Hours of mixed use (browsing with think time) until the battery died.
    pub hours: f64,
    /// Sessions completed before death.
    pub sessions: u64,
}

impl fmt::Display for BatteryRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} {:<14} {:>6.0} J battery: {:>5.1} h of use ({} sessions)",
            self.device, self.os, self.capacity_j, self.hours, self.sessions
        )
    }
}

/// A5 — battery life per device/OS: the same browse-and-buy usage pattern
/// (20 s think time per step) runs until each battery dies. §4.1's claim
/// — Palm OS battery life "approximately twice that of its rivals" — must
/// show up as hours of use.
pub fn battery_ablation() -> Vec<BatteryRow> {
    DeviceProfile::table2()
        .into_iter()
        .map(|device| {
            let app = PaymentsApp::new();
            let mut host = HostComputer::new(Database::new(), 89);
            app.install(&mut host);
            // Same battery for everyone so the OS/CPU efficiency is the
            // only variable (real capacities differ; §4.1's claim is about
            // the OS design, so we isolate it).
            let mut profile = device.clone();
            profile.battery_j = 2_000.0;
            let capacity = profile.battery_j;
            let mut system = SystemSpec::new()
                .middleware(MiddlewareKind::Wap)
                .device(profile)
                .wireless(wifi(20.0))
                .wired(WiredPath::wan())
                .seed(90)
                .build(host);
            let (sessions, hours) = run_until_battery_dies(&mut system, &app, 20.0, 100_000, 91);
            BatteryRow {
                device: device.name.to_owned(),
                os: device.os.to_string(),
                capacity_j: capacity,
                hours,
                sessions,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wbxml_saves_air_bytes_and_latency_on_slow_links() {
        let rows = wbxml_ablation(4);
        let binary = &rows[0];
        let text = &rows[1];
        assert!(
            binary.air_bytes + 30.0 < text.air_bytes,
            "{} vs {}",
            binary.air_bytes,
            text.air_bytes
        );
        assert!(binary.latency_secs <= text.latency_secs);
        assert!(binary.energy_j < text.energy_j);
    }

    #[test]
    fn security_costs_are_visible_but_bounded() {
        let rows = security_ablation(4);
        for pair in rows.chunks(2) {
            let (plain, secure) = (&pair[0], &pair[1]);
            assert!(secure.air_bytes > plain.air_bytes);
            assert!(secure.energy_j > plain.energy_j);
            // The overhead is a tax, not a cliff: < 40% extra latency.
            assert!(
                secure.latency_secs < plain.latency_secs * 1.4,
                "{} vs {}",
                secure.latency_secs,
                plain.latency_secs
            );
        }
    }

    #[test]
    fn flat_file_scales_linearly_embedded_stays_constant() {
        let rows = storage_ablation();
        let flat_10k = rows
            .iter()
            .find(|r| r.label == "flat file" && r.records == 10_000)
            .unwrap();
        let emb_10k = rows
            .iter()
            .find(|r| r.label == "embedded store" && r.records == 10_000)
            .unwrap();
        assert_eq!(flat_10k.touches_oldest, 10_000);
        assert_eq!(emb_10k.touches_oldest, 1);
        assert_eq!(flat_10k.touches_missing, 10_000);
    }

    #[test]
    fn palm_os_battery_life_is_roughly_twice_pocket_pc() {
        // §4.1, measured: same battery, same usage pattern.
        let rows = battery_ablation();
        let hours = |name: &str| rows.iter().find(|r| r.device.contains(name)).unwrap().hours;
        let palm = hours("Palm i705");
        let ipaq = hours("iPAQ");
        let ratio = palm / ipaq;
        assert!(
            (1.7..=2.6).contains(&ratio),
            "Palm/iPAQ lifetime ratio {ratio}"
        );
        // Symbian sits between them.
        let nokia = hours("Nokia");
        assert!(
            nokia > ipaq && nokia < palm,
            "nokia {nokia} vs ipaq {ipaq}, palm {palm}"
        );
    }

    #[test]
    fn deck_adaptation_makes_small_devices_work() {
        let rows = pagination_ablation();
        let adapted = rows
            .iter()
            .find(|r| r.deck_cap_bytes == Some(4_000))
            .unwrap();
        let unadapted = rows.iter().find(|r| r.deck_cap_bytes.is_none()).unwrap();
        assert!(adapted.palm_loads, "adapted decks fit the Palm");
        assert!(
            !unadapted.palm_loads,
            "the full deck exceeds its 8 KB budget"
        );
        assert!(adapted.air_bytes < unadapted.air_bytes);
    }
}
