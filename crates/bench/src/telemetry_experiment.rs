//! F10 — fleet telemetry: cost when off, identity when on.
//!
//! PR 8's telemetry layer ([`obs::timeseries`]) claims to be free when
//! disabled and purely observational when enabled. This experiment
//! measures both claims and writes `BENCH_telemetry.json`:
//!
//! 1. **Disabled cost.** A micro-benchmark runs the same arithmetic
//!    kernel with and without the per-event `Option<&mut Telemetry>`
//!    check the engine's instrumentation points pay when telemetry is
//!    off. The relative overhead is gated at ≤3% in `scripts/tier1.sh`.
//!    (A fleet-level on-vs-off wall-clock pair is reported too, but the
//!    branch cost is only resolvable in isolation — the fleet numbers
//!    carry run-to-run scheduler noise far larger than one branch.)
//! 2. **Thread identity.** The fixed-seed shared-world series export —
//!    JSONL *and* Chrome counter events — is byte-identical at
//!    1/2/4/8 threads.
//! 3. **Observer identity.** Turning telemetry on changes neither the
//!    merged summary nor the JSONL trace of a traced run — the
//!    instrumentation never feeds back into the simulation.
//! 4. **Saturation attribution.** Per-resource peak utilisation and
//!    saturation-onset sim-times (the numbers behind `report --f8
//!    --dash`), deterministic and therefore gated by `benchdiff`.
//!
//! Wall-clock timings use the median of [`REPETITIONS`] runs, like F5.

use std::fmt;
use std::hint::black_box;
use std::time::Instant;

use mcommerce_core::{CachePolicy, Category, FleetRun, FleetRunner, Scenario, Topology};
use obs::timeseries::{SeriesKind, Telemetry};
use simnet::SimDuration;

/// Fixed seed for every F10 run.
const F10_SEED: u64 = 1001;

/// Sessions each user runs.
const SESSIONS_PER_USER: u64 = 6;

/// Think time between sessions, seconds of sim time.
const THINK_SECS: f64 = 2.0;

/// Wall-clock repetitions per timed cell; the median is reported.
pub const REPETITIONS: usize = 5;

/// Utilisation threshold (thousandths) that counts as saturated in the
/// onset columns: 90%.
pub const SATURATION_MILLI: u64 = 900;

/// The micro-benchmark cell: kernel with vs without the disabled-path
/// telemetry branch.
#[derive(Debug, Clone)]
pub struct MicroNumbers {
    /// Kernel iterations per repetition.
    pub iterations: u64,
    /// Median wall seconds, kernel alone.
    pub baseline_wall_secs: f64,
    /// Median wall seconds, kernel + disabled-telemetry branch.
    pub disabled_wall_secs: f64,
    /// Relative cost of the branch, percent (median of the
    /// per-repetition ratios — the honest central estimate).
    pub overhead_disabled_pct: f64,
    /// Minimum per-repetition ratio — the least-noise pairing, and the
    /// CI gate statistic (noise only inflates ratios; a real
    /// regression lifts every pairing).
    pub overhead_disabled_floor_pct: f64,
}

/// The fleet-level cell: one shared-world run, telemetry off vs on.
#[derive(Debug, Clone)]
pub struct FleetCell {
    /// Stations in the shared world.
    pub users: u64,
    /// Median wall seconds with telemetry off.
    pub off_wall_secs: f64,
    /// Median wall seconds with telemetry on.
    pub on_wall_secs: f64,
    /// Relative cost of full capture, percent.
    pub overhead_enabled_pct: f64,
    /// Registered series in the merged telemetry.
    pub series: usize,
    /// Total (series, bin) points exported.
    pub points: usize,
}

/// One resource's saturation row (the `--dash` numbers).
#[derive(Debug, Clone)]
pub struct PeakRow {
    /// Series name, e.g. `gateway0000.cpu_util`.
    pub series: String,
    /// Series kind name (`util` / `gauge` / `rate`).
    pub kind: String,
    /// Peak bin value, thousandths.
    pub peak_milli: u64,
    /// Sim-time of the first bin at ≥[`SATURATION_MILLI`], if any.
    pub onset_ns: Option<u64>,
}

/// Renders a peak for humans: percent for utilisations and rates,
/// absolute for gauges (a queue depth of 1.0 is one request, not 100%).
pub fn peak_display(kind: &str, peak_milli: u64) -> String {
    if kind == "gauge" {
        format!("{:.2}", peak_milli as f64 / 1000.0)
    } else {
        format!("{:.1}%", peak_milli as f64 / 10.0)
    }
}

/// Renders a saturation onset for humans. Saturation is a fraction-of-
/// capacity idea, so gauges get `n/a` rather than a misleading time.
pub fn onset_display(kind: &str, onset_ns: Option<u64>) -> String {
    if kind == "gauge" {
        return "n/a (gauge)".into();
    }
    match onset_ns {
        Some(ns) => format!("{:.1} s", ns as f64 / 1e9),
        None => "never".into(),
    }
}

impl fmt::Display for PeakRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} peak {:>7}  saturated from {}",
            self.series,
            peak_display(&self.kind, self.peak_milli),
            onset_display(&self.kind, self.onset_ns),
        )
    }
}

/// The complete F10 result set.
#[derive(Debug, Clone)]
pub struct TelemetryNumbers {
    /// The micro disabled-cost cell.
    pub micro: MicroNumbers,
    /// The fleet on-vs-off cell.
    pub fleet: FleetCell,
    /// Series exports byte-identical at 1/2/4/8 threads.
    pub thread_identity: bool,
    /// Telemetry on/off leaves summary + trace byte-identical.
    pub run_identity: bool,
    /// Repeated exports of one run are byte-identical.
    pub export_stable: bool,
    /// Per-resource peaks and saturation onsets.
    pub peaks: Vec<PeakRow>,
}

impl fmt::Display for TelemetryNumbers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "micro ({} iters, median of {}): baseline {:.4} s, disabled branch {:.4} s -> {:+.2}% (floor {:+.2}%, gate <= 3%)",
            self.micro.iterations,
            REPETITIONS,
            self.micro.baseline_wall_secs,
            self.micro.disabled_wall_secs,
            self.micro.overhead_disabled_pct,
            self.micro.overhead_disabled_floor_pct,
        )?;
        writeln!(
            f,
            "fleet ({} users shared world): off {:.3} s, on {:.3} s -> {:+.1}% for {} series / {} points",
            self.fleet.users,
            self.fleet.off_wall_secs,
            self.fleet.on_wall_secs,
            self.fleet.overhead_enabled_pct,
            self.fleet.series,
            self.fleet.points,
        )?;
        writeln!(
            f,
            "series identical at 1/2/4/8 threads: {}",
            self.thread_identity
        )?;
        writeln!(
            f,
            "telemetry on/off leaves summary+trace identical: {}",
            self.run_identity
        )?;
        writeln!(f, "exports stable across repeated calls: {}", self.export_stable)?;
        writeln!(f, "resource saturation (bin peaks):")?;
        for row in &self.peaks {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

impl TelemetryNumbers {
    /// Renders the artefact written to `BENCH_telemetry.json`. Wall
    /// seconds and overhead percentages live under leaf names the
    /// `benchdiff` policy treats as informational; everything else is
    /// deterministic and gated.
    pub fn to_json(&self) -> String {
        let peaks: Vec<String> = self
            .peaks
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"series\": \"{}\", \"kind\": \"{}\", \"peak_milli\": {}, \"onset_ns\": {} }}",
                    r.series,
                    r.kind,
                    r.peak_milli,
                    r.onset_ns.map_or("null".into(), |ns| ns.to_string()),
                )
            })
            .collect();
        format!(
            "{{\n  \"experiment\": \"F10_telemetry\",\n  \"micro\": {{\n    \"iterations\": {},\n    \"baseline\": {{ \"wall_secs\": {:.6} }},\n    \"disabled\": {{ \"wall_secs\": {:.6}, \"overhead_disabled_pct\": {:.4}, \"overhead_disabled_floor_pct\": {:.4} }}\n  }},\n  \"fleet\": {{\n    \"users\": {},\n    \"off\": {{ \"wall_secs\": {:.6} }},\n    \"on\": {{ \"wall_secs\": {:.6}, \"overhead_enabled_pct\": {:.4} }},\n    \"series\": {},\n    \"points\": {}\n  }},\n  \"thread_identity\": {},\n  \"run_identity\": {},\n  \"export_stable\": {},\n  \"peaks\": [\n{}\n  ]\n}}\n",
            self.micro.iterations,
            self.micro.baseline_wall_secs,
            self.micro.disabled_wall_secs,
            self.micro.overhead_disabled_pct,
            self.micro.overhead_disabled_floor_pct,
            self.fleet.users,
            self.fleet.off_wall_secs,
            self.fleet.on_wall_secs,
            self.fleet.overhead_enabled_pct,
            self.fleet.series,
            self.fleet.points,
            self.thread_identity,
            self.run_identity,
            self.export_stable,
            peaks.join(",\n"),
        )
    }
}

/// The arithmetic kernel standing in for per-transaction engine work: a
/// 64-bit LCG mix, cheap enough that a mispredicted branch would show.
/// With `telemetry` present it records one busy interval per iteration,
/// exactly like a contention-charging instrumentation point; with
/// `None` it pays the one branch the engine pays when telemetry is off.
fn micro_kernel(iters: u64, mut telemetry: Option<&mut Telemetry>) -> u64 {
    let id = telemetry
        .as_deref_mut()
        .map(|t| t.register("micro.busy", SeriesKind::Utilization));
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut acc = 0u64;
    for i in 0..iters {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        acc = acc.wrapping_add(x >> 33);
        if let Some(t) = telemetry.as_deref_mut() {
            t.record_busy(id.expect("registered with telemetry"), i * 1_000, x % 512);
        }
    }
    acc
}

/// The same kernel with no instrumentation point at all — the "code
/// that was never instrumented" baseline.
fn micro_kernel_bare(iters: u64) -> u64 {
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut acc = 0u64;
    for _ in 0..iters {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        acc = acc.wrapping_add(x >> 33);
    }
    acc
}

/// The median of a set of wall times.
fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(f64::total_cmp);
    times.swap_remove(times.len() / 2)
}

/// `(median, floor)` of the per-repetition overhead ratios. Each
/// repetition times its baseline and variant back-to-back, so a noise
/// burst inflates both and largely cancels in that rep's ratio. The
/// median is the honest central estimate; the floor (minimum) is the
/// least-noise-contaminated pairing and is what CI gates — noise only
/// pushes ratios up, a real regression lifts every pairing.
fn overhead_pcts(baseline: &[f64], variant: &[f64]) -> (f64, f64) {
    let mut ratios: Vec<f64> = baseline
        .iter()
        .zip(variant)
        .map(|(b, v)| (v / b - 1.0) * 100.0)
        .collect();
    ratios.sort_by(f64::total_cmp);
    (ratios[ratios.len() / 2], ratios[0])
}

fn timed(f: &mut dyn FnMut() -> u64) -> f64 {
    let start = Instant::now();
    black_box(f());
    start.elapsed().as_secs_f64()
}

fn micro(quick: bool) -> MicroNumbers {
    let iterations: u64 = if quick { 20_000_000 } else { 100_000_000 };
    // `black_box` on the argument keeps the compiler from constant-
    // folding the `None` away — the engine's check is a real runtime
    // branch, so the micro-benchmark's must be too. The variants are
    // warmed once and then timed interleaved, so neither side pays the
    // cold caches alone.
    let _ = micro_kernel_bare(black_box(iterations));
    let _ = micro_kernel(black_box(iterations), black_box(None));
    let mut baseline_times = Vec::with_capacity(REPETITIONS);
    let mut disabled_times = Vec::with_capacity(REPETITIONS);
    for _ in 0..REPETITIONS {
        baseline_times.push(timed(&mut || micro_kernel_bare(black_box(iterations))));
        disabled_times.push(timed(&mut || micro_kernel(black_box(iterations), black_box(None))));
    }
    let (overhead_disabled_pct, overhead_disabled_floor_pct) =
        overhead_pcts(&baseline_times, &disabled_times);
    MicroNumbers {
        iterations,
        baseline_wall_secs: median(baseline_times),
        disabled_wall_secs: median(disabled_times),
        overhead_disabled_pct,
        overhead_disabled_floor_pct,
    }
}

/// The F10 shared world: Entertainment traffic behind one cell, one
/// gateway (with a long-TTL shared cache so the hit-rate track is
/// live) and one host.
fn fleet_scenario(users: u64) -> Scenario {
    Scenario::new("F10")
        .app(Category::Entertainment)
        .users(users)
        .sessions_per_user(SESSIONS_PER_USER)
        .think_time(THINK_SECS)
        .seed(F10_SEED)
        .cache(CachePolicy::standard().ttl(SimDuration::from_secs(3600)))
}

fn run_point(scenario: &Scenario, threads: usize, telemetry: bool) -> FleetRun {
    FleetRunner::new(scenario.clone())
        .topology(Topology::shared())
        .threads(threads)
        .telemetry(telemetry)
        .run()
}

/// Runs the full F10 experiment. `quick` shrinks the population and the
/// micro iteration count; seeds and topology are identical either way.
pub fn run(quick: bool) -> TelemetryNumbers {
    let users: u64 = if quick { 12 } else { 32 };
    let scenario = fleet_scenario(users);

    // Fleet wall-clock pair: warm-up, then interleaved repetitions,
    // median each. The kept run is the on-side median run; its series
    // are deterministic across repetitions anyway.
    let _ = run_point(&scenario, 2, false);
    let _ = run_point(&scenario, 2, true);
    let mut off_times = Vec::with_capacity(REPETITIONS);
    let mut on_runs: Vec<(f64, FleetRun)> = Vec::with_capacity(REPETITIONS);
    for _ in 0..REPETITIONS {
        let start = Instant::now();
        let _ = run_point(&scenario, 2, false);
        off_times.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let run = run_point(&scenario, 2, true);
        on_runs.push((start.elapsed().as_secs_f64(), run));
    }
    let on_times: Vec<f64> = on_runs.iter().map(|(secs, _)| *secs).collect();
    let (overhead_enabled_pct, _) = overhead_pcts(&off_times, &on_times);
    let off_wall_secs = median(off_times);
    on_runs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (on_wall_secs, fleet_run) = on_runs.swap_remove(REPETITIONS / 2);
    let telemetry = fleet_run
        .timeseries
        .as_ref()
        .expect("telemetry-on run carries series");

    // Thread identity: the canonical exports, byte for byte.
    let reference_jsonl = telemetry.to_jsonl();
    let reference_counters = telemetry.chrome_counter_events();
    let mut thread_identity = true;
    for threads in [1usize, 4, 8] {
        let other = run_point(&scenario, threads, true);
        let other_t = other.timeseries.as_ref().expect("telemetry on");
        thread_identity &= other_t.to_jsonl() == reference_jsonl
            && other_t.chrome_counter_events() == reference_counters;
    }

    // Observer identity: telemetry must not perturb the simulation.
    let traced_off = FleetRunner::new(scenario.clone())
        .topology(Topology::shared())
        .threads(2)
        .traced(true)
        .run();
    let traced_on = FleetRunner::new(scenario.clone())
        .topology(Topology::shared())
        .threads(2)
        .traced(true)
        .telemetry(true)
        .run();
    let run_identity = traced_off.report.summary == traced_on.report.summary
        && traced_off.trace.as_ref().expect("traced").to_jsonl()
            == traced_on.trace.as_ref().expect("traced").to_jsonl();

    // Export stability: pure functions of the recorded bins.
    let export_stable = telemetry.to_jsonl() == reference_jsonl
        && telemetry.chrome_counter_events() == reference_counters;

    // Saturation rows for every registered resource series.
    let peaks: Vec<PeakRow> = telemetry
        .names()
        .map(str::to_owned)
        .collect::<Vec<_>>()
        .into_iter()
        .map(|name| PeakRow {
            kind: telemetry.kind(&name).expect("registered").name().to_owned(),
            peak_milli: telemetry.peak_milli(&name).expect("registered"),
            onset_ns: telemetry.onset_ns(&name, SATURATION_MILLI),
            series: name,
        })
        .collect();

    let points = reference_jsonl.lines().count();
    TelemetryNumbers {
        micro: micro(quick),
        fleet: FleetCell {
            users,
            off_wall_secs,
            on_wall_secs,
            overhead_enabled_pct,
            series: telemetry.names().count(),
            points,
        },
        thread_identity,
        run_identity,
        export_stable,
        peaks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f10_quick_holds_its_gates() {
        let numbers = run(true);
        assert!(numbers.thread_identity, "series must not depend on threads");
        assert!(numbers.run_identity, "telemetry must not perturb the run");
        assert!(numbers.export_stable);
        assert!(numbers.fleet.series > 0 && numbers.fleet.points > 0);
        // Every shared resource shows up.
        let names: Vec<&str> = numbers.peaks.iter().map(|r| r.series.as_str()).collect();
        assert!(names.contains(&"cell0000.airtime_util"), "{names:?}");
        assert!(names.contains(&"gateway0000.cpu_util"), "{names:?}");
        assert!(names.contains(&"gateway0000.cache_hit_rate"), "{names:?}");
        assert!(names.contains(&"host0000.cpu_util"), "{names:?}");
        assert!(names.contains(&"host0000.queue_depth"), "{names:?}");
    }

    #[test]
    fn f10_json_is_shaped_like_the_artefact() {
        let numbers = run(true);
        let json = numbers.to_json();
        assert!(json.contains("\"experiment\": \"F10_telemetry\""));
        assert!(json.contains("\"overhead_disabled_pct\""));
        assert!(json.contains("\"thread_identity\": true"));
        assert!(json.contains("\"peaks\""));
        // The artefact parses with the benchdiff reader and diffs clean
        // against itself.
        let diff = crate::benchdiff::diff_docs(
            "telemetry",
            &json,
            &json,
            &crate::benchdiff::Tolerances::default(),
        )
        .expect("artefact parses");
        assert!(diff.passed());
    }
}
