//! Regenerates every table and figure of the paper from the simulation
//! and prints them in paper order.
//!
//! ```text
//! cargo run -p bench --bin report [--quick] [--f4] [--f5] [--f6] [--f7] [--f8] [--f9] [--f10] [--f11] [--f12] [--trace] [--dash]
//! ```
//!
//! `--quick` shrinks every workload for smoke runs; `--f4` runs only the
//! F4 event-engine experiment (and still writes `BENCH_engine.json`);
//! `--f5` runs only the F5 observability-overhead experiment (writes
//! `BENCH_obs.json`); `--f6` runs only the F6 fault-injection experiment
//! (writes `BENCH_faults.json`); `--f7` runs only the F7 caching-hierarchy
//! experiment (writes `BENCH_cache.json`); `--f8` runs only the F8
//! shared-world contention experiment (writes `BENCH_contention.json`);
//! `--f9` runs only the F9 fleet-scale experiment (writes
//! `BENCH_scale.json` — populations × threads with peak-RSS curves; each
//! cell re-executes this binary via the internal `--f9-cell` mode so its
//! RSS high-water mark is measured in a fresh process).
//! `--f10` runs only the F10 fleet-telemetry experiment (writes
//! `BENCH_telemetry.json`); `--f11` runs only the F11 durable-storage
//! experiment (writes `BENCH_db.json` — WAL group commit × fsync cost,
//! recovery-outage pricing, and the zero-cost identity gate).
//! `--trace` additionally exports the
//! fixed-seed fleet trace as `TRACE_fleet.jsonl` and
//! `TRACE_fleet.trace.json` — open the latter in `chrome://tracing` or
//! <https://ui.perfetto.dev>. `--dash` (with `--f8`) appends the
//! resource dashboard: per-resource peak utilisation, saturation-onset
//! sim-times, the busiest-resource attribution of the p99 knee, and the
//! telemetry artefacts `TELEMETRY_fleet.jsonl` +
//! `TRACE_fleet.counters.trace.json` (spans *and* Perfetto counter
//! tracks).

use bench::ablations;
use bench::cache_experiment;
use bench::contention_experiment;
use bench::db_experiment;
use bench::engine;
use bench::experiments;
use bench::faults_experiment;
use bench::obs_experiment;
use bench::scale_experiment;
use bench::search_experiment;
use bench::tcpx;
use bench::telemetry_experiment;
use mcommerce_core::{fleet, CachePolicy, Category, FleetRunner, Scenario, Topology};
use simnet::SimDuration;

fn heading(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Runs F4 and writes the `BENCH_engine.json` artefact next to the
/// working directory.
fn f4(quick: bool) {
    heading("F4 — event engine: timer-wheel scheduler vs BinaryHeap reference");
    let numbers = engine::run(quick);
    println!("{numbers}");
    let path = "BENCH_engine.json";
    std::fs::write(path, numbers.to_json()).expect("write BENCH_engine.json");
    println!("\n-> wrote {path}");
}

/// Runs F5, writes `BENCH_obs.json`, and (with `--trace`) exports the
/// fixed-seed fleet trace.
fn f5(quick: bool, trace: bool) {
    heading("F5 — observability: flight-recorder overhead, on and off");
    let numbers = obs_experiment::run(quick);
    println!("{numbers}");
    let path = "BENCH_obs.json";
    std::fs::write(path, numbers.to_json()).expect("write BENCH_obs.json");
    println!("\n-> wrote {path}");
    if trace {
        let scenario = obs_experiment::trace_scenario(quick);
        let fleet_trace = FleetRunner::new(scenario)
            .threads(fleet::default_threads())
            .traced(true)
            .run()
            .trace
            .expect("traced run carries a trace");
        std::fs::write("TRACE_fleet.jsonl", fleet_trace.to_jsonl()).expect("write trace jsonl");
        std::fs::write("TRACE_fleet.trace.json", fleet_trace.to_chrome_json())
            .expect("write chrome trace");
        println!(
            "-> wrote TRACE_fleet.jsonl + TRACE_fleet.trace.json ({} events, {} dumps); \
             open the .trace.json in chrome://tracing or https://ui.perfetto.dev",
            fleet_trace.events.len(),
            fleet_trace.dumps.len()
        );
        for dump in fleet_trace.dumps.iter().take(3) {
            println!("{dump}");
        }
    }
}

/// Runs F6 and writes the `BENCH_faults.json` artefact.
fn f6(quick: bool) {
    heading("F6 — fault injection: availability + tail latency under storms, MC vs EC");
    let numbers = faults_experiment::run(quick);
    println!("{numbers}");
    let path = "BENCH_faults.json";
    std::fs::write(path, numbers.to_json()).expect("write BENCH_faults.json");
    println!("\n-> wrote {path}");
}

/// Runs F7 and writes the `BENCH_cache.json` artefact.
fn f7(quick: bool) {
    heading("F7 — caching hierarchy: cold vs warm latency, zero-TTL identity");
    let numbers = cache_experiment::run(quick);
    println!("{numbers}");
    let path = "BENCH_cache.json";
    std::fs::write(path, numbers.to_json()).expect("write BENCH_cache.json");
    println!("\n-> wrote {path}");
}

/// Runs F8 and writes the `BENCH_contention.json` artefact. With
/// `dash`, appends the telemetry dashboard for the largest knee
/// population and exports the counter-track trace.
fn f8(quick: bool, dash: bool) {
    heading("F8 — shared-world contention: the knee + shared-cache growth");
    let numbers = contention_experiment::run(quick);
    println!("{numbers}");
    let path = "BENCH_contention.json";
    std::fs::write(path, numbers.to_json()).expect("write BENCH_contention.json");
    println!("\n-> wrote {path}");
    if dash {
        f8_dash(quick);
    }
}

/// The `--f8 --dash` view: reruns the largest knee population with
/// telemetry on, prints per-resource peaks and saturation onsets,
/// attributes the p99 knee to the busiest shared resource, and writes
/// the series + counter-track artefacts (the artefact run adds the
/// long-TTL shared cache so the hit-rate track is live in Perfetto).
fn f8_dash(quick: bool) {
    let users: u64 = if quick { 32 } else { 96 };
    let scenario = Scenario::new("F8")
        .app(Category::Entertainment)
        .users(users)
        .sessions_per_user(6)
        .think_time(2.0)
        .seed(801);
    let knee_run = FleetRunner::new(scenario.clone())
        .topology(Topology::shared())
        .threads(2)
        .telemetry(true)
        .run();
    let telemetry = knee_run.timeseries.as_ref().expect("telemetry on");
    let stats = knee_run.contention.as_ref().expect("shared run");

    println!(
        "\nresource dashboard — {} users, bin {} ms:",
        users,
        telemetry.bin_ns() / 1_000_000
    );
    println!("  {:<28} {:>8}  saturated (>=90%) from", "series", "peak");
    for name in telemetry.names().map(str::to_owned).collect::<Vec<_>>() {
        let kind = telemetry.kind(&name).expect("registered").name();
        let peak = telemetry.peak_milli(&name).unwrap_or(0);
        let onset = telemetry.onset_ns(&name, telemetry_experiment::SATURATION_MILLI);
        println!(
            "  {:<28} {:>8}  {}",
            name,
            telemetry_experiment::peak_display(kind, peak),
            telemetry_experiment::onset_display(kind, onset),
        );
    }

    // Knee attribution: the shared resource that collected the most
    // wait is what bends p99.
    let waits = [
        ("cell airtime", "cell0000.airtime_util", stats.cell_wait_ns),
        ("gateway CPU", "gateway0000.cpu_util", stats.gateway_wait_ns),
        ("host CPU", "host0000.cpu_util", stats.host_wait_ns),
    ];
    let total: u64 = waits.iter().map(|&(_, _, ns)| ns).sum();
    let &(label, series, wait_ns) = waits
        .iter()
        .max_by_key(|&&(_, _, ns)| ns)
        .expect("three resources");
    let onset = telemetry.onset_ns(series, telemetry_experiment::SATURATION_MILLI);
    println!(
        "\n-> p99 knee attribution: {} ({:.1}% of all shared-resource wait; `{}` {})",
        label,
        if total == 0 {
            0.0
        } else {
            wait_ns as f64 / total as f64 * 100.0
        },
        series,
        match onset {
            Some(ns) => format!("first >=90% utilised at {:.1} s sim-time", ns as f64 / 1e9),
            None => format!(
                "peaks at {:.1}%",
                telemetry.peak_milli(series).unwrap_or(0) as f64 / 10.0
            ),
        }
    );

    // Artefacts: the same world with the long-TTL shared cache, traced,
    // so the Perfetto view carries span swim-lanes plus live counter
    // tracks for every resource including the cache hit-rate.
    let artefact_run = FleetRunner::new(
        scenario.cache(CachePolicy::standard().ttl(SimDuration::from_secs(3600))),
    )
    .topology(Topology::shared())
    .threads(2)
    .traced(true)
    .telemetry(true)
    .run();
    let artefact_series = artefact_run.timeseries.as_ref().expect("telemetry on");
    let trace = artefact_run.trace.as_ref().expect("traced run");
    std::fs::write("TELEMETRY_fleet.jsonl", artefact_series.to_jsonl())
        .expect("write telemetry jsonl");
    std::fs::write(
        "TRACE_fleet.counters.trace.json",
        obs::export::to_chrome_trace_with(&trace.events, Some(artefact_series)),
    )
    .expect("write counter trace");
    println!(
        "-> wrote TELEMETRY_fleet.jsonl ({} points) + TRACE_fleet.counters.trace.json \
         ({} span events, {} counter tracks); open the trace in https://ui.perfetto.dev",
        artefact_series.to_jsonl().lines().count(),
        trace.events.len(),
        artefact_series.names().count(),
    );
}

/// Runs F10 and writes the `BENCH_telemetry.json` artefact.
fn f10(quick: bool) {
    heading("F10 — fleet telemetry: cost when off, identity when on");
    let numbers = telemetry_experiment::run(quick);
    println!("{numbers}");
    let path = "BENCH_telemetry.json";
    std::fs::write(path, numbers.to_json()).expect("write BENCH_telemetry.json");
    println!("\n-> wrote {path}");
}

/// Runs F11 and writes the `BENCH_db.json` artefact.
fn f11(quick: bool) {
    heading("F11 — durable storage: group commit × fsync cost, recovery pricing");
    let numbers = db_experiment::run(quick);
    println!("{numbers}");
    let path = "BENCH_db.json";
    std::fs::write(path, numbers.to_json()).expect("write BENCH_db.json");
    println!("\n-> wrote {path}");
}

/// Runs F12 and writes the `BENCH_search.json` artefact.
fn f12(quick: bool) {
    heading("F12 — full-text search: cold vs memoized latency, index scaling");
    let numbers = search_experiment::run(quick);
    println!("{numbers}");
    let path = "BENCH_search.json";
    std::fs::write(path, numbers.to_json()).expect("write BENCH_search.json");
    println!("\n-> wrote {path}");
}

/// Runs F9 and writes the `BENCH_scale.json` artefact.
fn f9(quick: bool) {
    heading("F9 — fleet scale: populations × threads, wall-clock / tps / peak RSS");
    let numbers = scale_experiment::run(quick);
    println!("{numbers}");
    let path = "BENCH_scale.json";
    std::fs::write(path, numbers.to_json()).expect("write BENCH_scale.json");
    println!("\n-> wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Hidden subprocess mode: run exactly one F9 grid cell in this
    // process (fresh RSS high-water mark) and print it as one JSON line.
    if let Some(at) = args.iter().position(|a| a == "--f9-cell") {
        let users: u64 = args[at + 1].parse().expect("--f9-cell <users> <threads>");
        let threads: usize = args[at + 2].parse().expect("--f9-cell <users> <threads>");
        println!("{}", scale_experiment::run_cell(users, threads).to_json());
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let trace = std::env::args().any(|a| a == "--trace");
    let dash = std::env::args().any(|a| a == "--dash");
    let only_f4 = std::env::args().any(|a| a == "--f4");
    let only_f5 = std::env::args().any(|a| a == "--f5");
    let only_f6 = std::env::args().any(|a| a == "--f6");
    let only_f7 = std::env::args().any(|a| a == "--f7");
    let only_f8 = std::env::args().any(|a| a == "--f8");
    let only_f9 = std::env::args().any(|a| a == "--f9");
    let only_f10 = std::env::args().any(|a| a == "--f10");
    let only_f11 = std::env::args().any(|a| a == "--f11");
    let only_f12 = std::env::args().any(|a| a == "--f12");
    if only_f4 || only_f5 || only_f6 || only_f7 || only_f8 || only_f9 || only_f10 || only_f11 || only_f12
    {
        if only_f4 {
            f4(quick);
        }
        if only_f5 {
            f5(quick, trace);
        }
        if only_f6 {
            f6(quick);
        }
        if only_f7 {
            f7(quick);
        }
        if only_f8 {
            f8(quick, dash);
        }
        if only_f9 {
            f9(quick);
        }
        if only_f10 {
            f10(quick);
        }
        if only_f11 {
            f11(quick);
        }
        if only_f12 {
            f12(quick);
        }
        return;
    }
    let (txns, sessions, t4_bytes, x1_bytes) = if quick {
        (40, 4, 50_000, 150_000)
    } else {
        (300, 12, 200_000, 400_000)
    };

    heading("Figures 1 & 2 — EC (4 components) vs MC (6 components), same workload");
    let (ec, mc) = experiments::fig1_fig2(txns);
    println!("{ec}");
    println!("{mc}");
    println!(
        "\n-> MC adds the mobile middleware and wireless components; both carry\n\
         real latency, and the end-to-end transaction still completes."
    );

    heading("Table 1 — major mobile commerce applications (all 8 categories, measured)");
    for row in experiments::table1(sessions) {
        println!("{row}");
    }

    heading("Table 2 — mobile stations (same workload per device)");
    for row in experiments::table2(sessions) {
        println!("{row}");
    }

    heading("Table 3 — WAP vs i-mode middleware");
    for row in experiments::table3(sessions) {
        println!("{row}");
    }

    heading("Table 4 — WLAN standards: goodput vs distance");
    let rows = experiments::table4(t4_bytes);
    let mut last = String::new();
    for row in rows {
        if row.standard != last {
            println!(
                "--- {} (nominal {} Mbps) ---",
                row.standard,
                row.nominal_bps / 1_000_000
            );
            last = row.standard.clone();
        }
        if row.goodput_bps > 0.0 {
            println!(
                "  {:>5.0} m: {:>8.2} Mbps ({} retx)",
                row.distance_m,
                row.goodput_bps / 1e6,
                row.retransmissions
            );
        } else {
            println!("  {:>5.0} m: out of range", row.distance_m);
        }
    }

    heading("Table 5 — cellular generations (payment transaction per standard)");
    for row in experiments::table5() {
        println!("{row}");
    }

    heading("F3 — fleet engine: users × threads, same merged result, wall-clock only");
    let fleet_users: &[u64] = if quick {
        &[1, 100, 1_000]
    } else {
        &[1, 100, 1_000, 10_000]
    };
    for row in experiments::fleet_scale(fleet_users, &[1, 2, 4, 8]) {
        println!("{row}");
    }
    println!(
        "\n-> the merged FleetSummary is asserted identical at every thread\n\
         count; txns/s varies only with the machine's real parallelism."
    );

    f4(quick);
    f5(quick, trace);
    f6(quick);
    f7(quick);
    f8(quick, dash);
    f9(quick);
    f10(quick);
    f11(quick);
    f12(quick);

    heading("X1 — §5.2: TCP variants over an error-prone wireless hop");
    for row in tcpx::full_sweep(x1_bytes) {
        println!("{row}");
    }

    heading("X2 — §1.1: the five system requirements, checked");
    for report in experiments::independence() {
        println!(
            "requirement {} ({}) — {}\n    {}",
            report.number,
            report.requirement,
            if report.satisfied {
                "SATISFIED"
            } else {
                "NOT SATISFIED"
            },
            report.evidence
        );
    }

    heading("Ablations — what each design choice buys");
    println!("A1 — WBXML binary encoding (GPRS, travel workload):");
    for row in ablations::wbxml_ablation(sessions) {
        println!("  {row}");
    }
    println!("\nA2 — WTLS transport security (payment workload):");
    for row in ablations::security_ablation(sessions) {
        println!("  {row}");
    }
    println!("\nA3 — embedded store vs flat file (§7):");
    for row in ablations::storage_ablation() {
        println!("  {row}");
    }
    println!("\nA4 — gateway deck adaptation vs the Palm i705's 8 KB budget:");
    for row in ablations::pagination_ablation() {
        println!("  {row}");
    }
    println!("\nA5 — battery life per OS (§4.1), same 2 kJ battery and usage:");
    for row in ablations::battery_ablation() {
        println!("  {row}");
    }

    println!("\ndone.");
}
