//! Diffs `BENCH_*.json` artefact sets against committed baselines.
//!
//! ```text
//! cargo run -p bench --bin benchdiff -- <baseline> <current> [--full] \
//!     [--tol <rel>] [--tol-metric <name>=<rel>]...
//! ```
//!
//! `<baseline>` and `<current>` are either two JSON files or two
//! directories; directories are matched by the baseline's `*.json`
//! file names (a baseline artefact missing from the current set fails).
//! Prints a markdown delta table per artefact and exits 1 if any gated
//! metric drifted beyond tolerance. Wall-clock metrics (wall seconds,
//! throughput, RSS, overhead percentages) are reported but never gate —
//! see [`bench::benchdiff`] for the policy.
//!
//! `--tol` sets the default relative tolerance (default `0.01` = 1%);
//! `--tol-metric p99_ms=0.05` overrides one metric by its final path
//! segment. `--full` prints unchanged rows too.

use bench::benchdiff::{diff_docs, Diff, Tolerances};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: benchdiff <baseline-file-or-dir> <current-file-or-dir> \
         [--full] [--tol <rel>] [--tol-metric <name>=<rel>]..."
    );
    std::process::exit(2);
}

/// The artefact pairs to compare: `(label, baseline path, current path)`.
fn pairs(baseline: &Path, current: &Path) -> Result<Vec<(String, PathBuf, PathBuf)>, String> {
    if baseline.is_dir() != current.is_dir() {
        return Err("baseline and current must both be files or both directories".into());
    }
    if !baseline.is_dir() {
        let label = baseline
            .file_stem()
            .map_or_else(|| "artefact".into(), |s| s.to_string_lossy().into_owned());
        return Ok(vec![(label, baseline.into(), current.into())]);
    }
    let mut out = Vec::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(baseline)
        .map_err(|e| format!("read {}: {e}", baseline.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(format!("no *.json baselines in {}", baseline.display()));
    }
    for base_path in entries {
        let name = base_path.file_name().expect("json file has a name");
        let label = base_path
            .file_stem()
            .expect("json file has a stem")
            .to_string_lossy()
            .into_owned();
        out.push((label, base_path.clone(), current.join(name)));
    }
    Ok(out)
}

fn compare(label: &str, base_path: &Path, cur_path: &Path, tol: &Tolerances) -> Result<Diff, String> {
    let base = std::fs::read_to_string(base_path)
        .map_err(|e| format!("{label}: read {}: {e}", base_path.display()))?;
    let cur = std::fs::read_to_string(cur_path)
        .map_err(|e| format!("{label}: read {}: {e} (artefact missing?)", cur_path.display()))?;
    diff_docs(label, &base, &cur, tol)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut full = false;
    let mut tol = Tolerances::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--tol" => {
                let v = it.next().unwrap_or_else(|| usage());
                tol.default_rel = v.parse().unwrap_or_else(|_| usage());
            }
            "--tol-metric" => {
                let v = it.next().unwrap_or_else(|| usage());
                let (name, rel) = v.split_once('=').unwrap_or_else(|| usage());
                tol.per_metric
                    .push((name.to_owned(), rel.parse().unwrap_or_else(|_| usage())));
            }
            _ if arg.starts_with("--") => usage(),
            _ => paths.push(arg.into()),
        }
    }
    let [baseline, current] = paths.as_slice() else {
        usage()
    };

    let pairs = match pairs(baseline, current) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("benchdiff: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = 0usize;
    for (label, base_path, cur_path) in &pairs {
        match compare(label, base_path, cur_path, &tol) {
            Ok(diff) => {
                println!("{}", diff.to_markdown(full));
                if !diff.passed() {
                    failed += 1;
                    for row in diff.failures() {
                        eprintln!(
                            "benchdiff: FAIL {label}: `{}` baseline={} current={}",
                            row.metric,
                            row.baseline
                                .as_ref()
                                .map_or("—".into(), ToString::to_string),
                            row.current.as_ref().map_or("—".into(), ToString::to_string),
                        );
                    }
                }
            }
            Err(e) => {
                eprintln!("benchdiff: FAIL {e}");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!("benchdiff: {failed}/{} artefacts failed the gate", pairs.len());
        ExitCode::FAILURE
    } else {
        println!("benchdiff: {} artefacts within tolerance", pairs.len());
        ExitCode::SUCCESS
    }
}
