//! F5 — observability overhead: what the flight recorder costs.
//!
//! The obs layer's contract is *near-zero overhead when off*: a metrics
//! call with the registry disabled is one thread-local flag load and a
//! branch, and a [`obs::Recorder::Disabled`] sink is a single `match`.
//! This experiment prices that contract:
//!
//! 1. **Timer storm** (the F4 microbenchmark): the same
//!    self-rescheduling storm is run three ways — the uninstrumented F4
//!    baseline, an instrumented hop with the metrics registry
//!    *disabled*, and the same hop with the registry *enabled*. The
//!    disabled-vs-baseline gap is the price every simulation pays for
//!    the instrumentation existing at all; CI fails if it exceeds 3%.
//! 2. **Fleet**: a fixed-seed fleet run untraced vs. traced (per-user
//!    flight recorders + metrics), giving the end-to-end cost of full
//!    tracing.
//!
//! Results are written as the `BENCH_obs.json` artefact.

use std::cell::Cell;
use std::fmt;
use std::time::Instant;

use mcommerce_core::{fleet, Category, FleetRunner, Scenario};
use simnet::{SimDuration, Simulator};

use crate::engine::{delay_ns, FleetTiming, ThroughputSample};

thread_local! {
    /// Workload checksum, kept identical to the F4 storm's discipline so
    /// all three variants provably do the same virtual work.
    static ACC: Cell<u64> = const { Cell::new(0) };
}

fn hop_instrumented(sim: &mut Simulator, timer: u64, hop: u64) {
    ACC.with(|acc| acc.set(acc.get().wrapping_add(timer ^ hop)));
    // The one line under test: a counter bump on the storm's hot path.
    obs::metrics::incr("f5.hops");
    if hop == 0 {
        return;
    }
    sim.schedule_in(
        SimDuration::from_nanos(delay_ns(timer, hop)),
        move |s: &mut Simulator| hop_instrumented(s, timer, hop - 1),
    );
}

/// Times the F4 timer storm with an instrumented hop closure.
///
/// With `enable == false` the metrics registry stays in its default
/// disabled state, so each hop pays exactly the flag-check; with
/// `enable == true` every hop takes the full record path.
pub fn instrumented_throughput(timers: u64, hops: u64, enable: bool) -> ThroughputSample {
    ACC.with(|acc| acc.set(0));
    let guard = enable.then(obs::metrics::enable);
    let start = Instant::now();
    let mut sim = Simulator::new();
    for timer in 0..timers {
        sim.schedule_in(
            SimDuration::from_nanos(delay_ns(timer, hops)),
            move |s: &mut Simulator| hop_instrumented(s, timer, hops - 1),
        );
    }
    sim.run();
    let wall_secs = start.elapsed().as_secs_f64();
    drop(guard);
    let events = sim.events_processed();
    assert_eq!(events, timers * hops);
    ThroughputSample {
        engine: if enable {
            "wheel+obs(enabled)"
        } else {
            "wheel+obs(disabled)"
        },
        events,
        wall_secs,
        events_per_sec: events as f64 / wall_secs,
        checksum: ACC.with(|acc| acc.get()),
    }
}

/// The complete F5 result set.
#[derive(Debug, Clone)]
pub struct ObsNumbers {
    /// Concurrent timers in the storm.
    pub timers: u64,
    /// Re-schedules per timer.
    pub hops: u64,
    /// Uninstrumented F4 wheel baseline.
    pub baseline: ThroughputSample,
    /// Instrumented hop, metrics registry disabled.
    pub disabled: ThroughputSample,
    /// Instrumented hop, metrics registry enabled.
    pub enabled: ThroughputSample,
    /// Throughput lost to the *disabled* instrumentation, percent of
    /// baseline (negative = measured faster; noise). The median of the
    /// per-repetition ratios — the honest central estimate.
    pub overhead_disabled_pct: f64,
    /// The *minimum* per-repetition disabled-overhead ratio. Scheduler
    /// noise only inflates a ratio, so the floor is the least-noise
    /// pairing — a true regression lifts every pairing, floor included,
    /// which is what makes this the CI gate statistic.
    pub overhead_disabled_floor_pct: f64,
    /// Throughput lost with the registry enabled, percent of baseline.
    pub overhead_enabled_pct: f64,
    /// Fixed-seed fleet, recorder off.
    pub fleet_untraced: FleetTiming,
    /// The same fleet fully traced (per-user recorders + metrics).
    pub fleet_traced: FleetTiming,
    /// Fleet throughput lost to full tracing, percent (median of the
    /// per-repetition ratios).
    pub fleet_overhead_pct: f64,
    /// Minimum per-repetition traced-fleet overhead ratio; the CI gate
    /// (see [`ObsNumbers::overhead_disabled_floor_pct`]).
    pub fleet_overhead_floor_pct: f64,
    /// Trace events the traced fleet produced.
    pub trace_events: u64,
    /// Flight-recorder dumps (failed transactions) in the traced fleet.
    pub trace_dumps: u64,
}

fn overhead_pct(baseline: f64, variant: f64) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    (1.0 - variant / baseline) * 100.0
}

impl fmt::Display for ObsNumbers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "timer storm: {} timers × {} hops = {} events",
            self.timers, self.hops, self.baseline.events
        )?;
        for s in [&self.baseline, &self.disabled, &self.enabled] {
            writeln!(
                f,
                "  {:<20} {:>8.3} s = {:>12.0} events/s",
                s.engine, s.wall_secs, s.events_per_sec
            )?;
        }
        writeln!(
            f,
            "  overhead: {:+.2}% disabled (floor {:+.2}%), {:+.2}% enabled (vs baseline)",
            self.overhead_disabled_pct, self.overhead_disabled_floor_pct, self.overhead_enabled_pct
        )?;
        writeln!(
            f,
            "fleet: {} users × {} thread(s): untraced {:.3} s ({:.0} txns/s), traced {:.3} s ({:.0} txns/s), {:+.2}% (floor {:+.2}%)",
            self.fleet_untraced.users,
            self.fleet_untraced.threads,
            self.fleet_untraced.wall_secs,
            self.fleet_untraced.tps,
            self.fleet_traced.wall_secs,
            self.fleet_traced.tps,
            self.fleet_overhead_pct,
            self.fleet_overhead_floor_pct
        )?;
        write!(
            f,
            "  trace: {} events, {} flight dumps",
            self.trace_events, self.trace_dumps
        )
    }
}

impl ObsNumbers {
    /// Renders the result as the `BENCH_obs.json` document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"F5_obs\",\n  \"timers\": {},\n  \"hops\": {},\n  \"events\": {},\n  \"storm\": {{\n    \"baseline\": {{ \"wall_secs\": {:.6}, \"events_per_sec\": {:.1} }},\n    \"disabled\": {{ \"wall_secs\": {:.6}, \"events_per_sec\": {:.1} }},\n    \"enabled\": {{ \"wall_secs\": {:.6}, \"events_per_sec\": {:.1} }},\n    \"overhead_disabled_pct\": {:.3},\n    \"overhead_disabled_floor_pct\": {:.3},\n    \"overhead_enabled_pct\": {:.3}\n  }},\n  \"fleet\": {{\n    \"users\": {},\n    \"threads\": {},\n    \"untraced\": {{ \"wall_secs\": {:.6}, \"tps\": {:.1} }},\n    \"traced\": {{ \"wall_secs\": {:.6}, \"tps\": {:.1} }},\n    \"overhead_pct\": {:.3},\n    \"overhead_floor_pct\": {:.3},\n    \"trace_events\": {},\n    \"trace_dumps\": {}\n  }}\n}}\n",
            self.timers,
            self.hops,
            self.baseline.events,
            self.baseline.wall_secs,
            self.baseline.events_per_sec,
            self.disabled.wall_secs,
            self.disabled.events_per_sec,
            self.enabled.wall_secs,
            self.enabled.events_per_sec,
            self.overhead_disabled_pct,
            self.overhead_disabled_floor_pct,
            self.overhead_enabled_pct,
            self.fleet_untraced.users,
            self.fleet_untraced.threads,
            self.fleet_untraced.wall_secs,
            self.fleet_untraced.tps,
            self.fleet_traced.wall_secs,
            self.fleet_traced.tps,
            self.fleet_overhead_pct,
            self.fleet_overhead_floor_pct,
            self.trace_events,
            self.trace_dumps
        )
    }
}

/// The fixed-seed fleet scenario F5 measures (and `report --trace`
/// exports): commerce sessions over the workshop default stack. The
/// quick variant trades population for sessions so each shard still
/// does enough work for the overhead ratio to be signal, not
/// per-thread fixed cost.
pub fn trace_scenario(quick: bool) -> Scenario {
    let scenario = Scenario::new("F5").app(Category::Commerce).seed(97);
    if quick {
        scenario.users(1000).sessions_per_user(8)
    } else {
        scenario.users(10_000)
    }
}

/// Repetitions per measured variant: the median of five shrugs off
/// outliers in *both* directions, where best-of-N systematically
/// favours whichever variant got a lucky scheduling window — the
/// mechanism behind the negative "overheads" single-shot F5 reported.
pub const REPETITIONS: usize = 5;

/// The median-wall-time sample of one variant's repetitions.
fn median_of(mut runs: Vec<ThroughputSample>) -> ThroughputSample {
    runs.sort_by(|a, b| a.wall_secs.total_cmp(&b.wall_secs));
    runs.swap_remove(runs.len() / 2)
}

/// `(median, floor)` of the per-repetition overhead ratios. Repetition
/// *i*'s baseline and variant run back-to-back, so a noise burst
/// inflates both and mostly cancels in that rep's ratio — where the
/// ratio of two independently-chosen medians inherits whichever rep
/// each median landed on. The **median** ratio is the honest central
/// estimate the artefact reports; the **floor** (minimum) ratio is the
/// least-noise-contaminated pairing and is what CI gates: scheduler
/// noise only pushes ratios *up*, while a genuine instrumentation
/// regression lifts every pairing, floor included.
fn overhead_stats(pairs: impl Iterator<Item = (f64, f64)>) -> (f64, f64) {
    let mut ratios: Vec<f64> = pairs.map(|(base, var)| overhead_pct(base, var)).collect();
    ratios.sort_by(f64::total_cmp);
    (ratios[ratios.len() / 2], ratios[0])
}

/// Runs the full F5 experiment. `quick` shrinks the storm and the fleet
/// for CI smoke runs; every reported wall time is the **median of
/// five** repetitions and every overhead gate is the **median of the
/// five per-repetition ratios**, so the gates compare signal, not
/// scheduler noise.
pub fn run(quick: bool) -> ObsNumbers {
    let (timers, hops) = if quick {
        (32_768u64, 16u64)
    } else {
        (131_072, 32)
    };

    // One untimed warm-up of every variant, then *interleaved* timed
    // repetitions: measuring each variant in its own block hands the
    // first block cold caches and a cold frequency governor, which is
    // how F5 used to report negative overheads.
    let _ = crate::engine::wheel_throughput(timers, hops);
    let _ = instrumented_throughput(timers, hops, false);
    let _ = instrumented_throughput(timers, hops, true);
    let mut baseline_runs = Vec::with_capacity(REPETITIONS);
    let mut disabled_runs = Vec::with_capacity(REPETITIONS);
    let mut enabled_runs = Vec::with_capacity(REPETITIONS);
    for _ in 0..REPETITIONS {
        baseline_runs.push(crate::engine::wheel_throughput(timers, hops));
        disabled_runs.push(instrumented_throughput(timers, hops, false));
        enabled_runs.push(instrumented_throughput(timers, hops, true));
    }
    let (storm_disabled_overhead, storm_disabled_floor) = overhead_stats(
        baseline_runs
            .iter()
            .zip(&disabled_runs)
            .map(|(b, d)| (b.events_per_sec, d.events_per_sec)),
    );
    let (storm_enabled_overhead, _) = overhead_stats(
        baseline_runs
            .iter()
            .zip(&enabled_runs)
            .map(|(b, e)| (b.events_per_sec, e.events_per_sec)),
    );
    let baseline = median_of(baseline_runs);
    let disabled = median_of(disabled_runs);
    let enabled = median_of(enabled_runs);
    // Drain the counters the enabled runs published on this thread.
    let storm_metrics = obs::metrics::take();
    debug_assert!(storm_metrics.counter("f5.hops") > 0);
    assert_eq!(baseline.checksum, disabled.checksum);
    assert_eq!(baseline.checksum, enabled.checksum);

    let scenario = trace_scenario(quick);
    let threads = fleet::default_threads();
    // Same warm-up + interleaved median-of-five discipline for the
    // fleet pair. Summaries and traces are deterministic — repetitions
    // only vary in wall time — so keeping the median run's trace loses
    // nothing.
    let untraced_runner = FleetRunner::new(scenario.clone()).threads(threads);
    let traced_runner = FleetRunner::new(scenario.clone()).threads(threads).traced(true);
    let _ = untraced_runner.run();
    let _ = traced_runner.run();
    let mut untraced_runs = Vec::with_capacity(REPETITIONS);
    let mut traced_runs = Vec::with_capacity(REPETITIONS);
    for _ in 0..REPETITIONS {
        untraced_runs.push(untraced_runner.run());
        traced_runs.push(traced_runner.run());
    }
    let (fleet_overhead, fleet_floor) = overhead_stats(
        untraced_runs
            .iter()
            .zip(&traced_runs)
            .map(|(u, t)| (u.report.throughput_tps(), t.report.throughput_tps())),
    );
    let median_fleet = |mut runs: Vec<mcommerce_core::FleetRun>| {
        runs.sort_by(|a, b| a.report.wall_secs.total_cmp(&b.report.wall_secs));
        runs.swap_remove(runs.len() / 2)
    };
    let untraced = median_fleet(untraced_runs).report;
    let traced_run = median_fleet(traced_runs);
    let (traced, trace) = (
        traced_run.report,
        traced_run.trace.expect("traced run carries a trace"),
    );
    assert_eq!(
        untraced.summary, traced.summary,
        "tracing must not perturb the simulation"
    );
    let fleet_untraced = FleetTiming {
        users: scenario.users,
        threads: untraced.threads,
        transactions: untraced.summary.transactions(),
        wall_secs: untraced.wall_secs,
        tps: untraced.throughput_tps(),
    };
    let fleet_traced = FleetTiming {
        users: scenario.users,
        threads: traced.threads,
        transactions: traced.summary.transactions(),
        wall_secs: traced.wall_secs,
        tps: traced.throughput_tps(),
    };

    ObsNumbers {
        timers,
        hops,
        overhead_disabled_pct: storm_disabled_overhead,
        overhead_disabled_floor_pct: storm_disabled_floor,
        overhead_enabled_pct: storm_enabled_overhead,
        fleet_overhead_pct: fleet_overhead,
        fleet_overhead_floor_pct: fleet_floor,
        baseline,
        disabled,
        enabled,
        fleet_untraced,
        fleet_traced,
        trace_events: trace.events.len() as u64,
        trace_dumps: trace.dumps.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumented_storm_does_the_same_virtual_work() {
        let base = crate::engine::wheel_throughput(64, 8);
        let off = instrumented_throughput(64, 8, false);
        let on = instrumented_throughput(64, 8, true);
        assert_eq!(base.checksum, off.checksum);
        assert_eq!(base.checksum, on.checksum);
        assert_eq!(on.events, 64 * 8);
        // The enabled run published one counter bump per event.
        let metrics = obs::metrics::take();
        assert_eq!(metrics.counter("f5.hops"), 64 * 8);
    }

    #[test]
    fn disabled_run_publishes_nothing() {
        let _ = obs::metrics::take();
        let _off = instrumented_throughput(64, 8, false);
        let metrics = obs::metrics::take();
        assert_eq!(metrics.counter("f5.hops"), 0);
    }

    #[test]
    fn json_carries_the_gate_fields() {
        // A miniature end-to-end run: tiny storm, tiny fleet.
        let numbers = ObsNumbers {
            timers: 64,
            hops: 8,
            baseline: crate::engine::wheel_throughput(64, 8),
            disabled: instrumented_throughput(64, 8, false),
            enabled: instrumented_throughput(64, 8, true),
            overhead_disabled_pct: 1.25,
            overhead_disabled_floor_pct: 0.75,
            overhead_enabled_pct: 4.5,
            fleet_untraced: FleetTiming {
                users: 4,
                threads: 2,
                transactions: 8,
                wall_secs: 0.5,
                tps: 16.0,
            },
            fleet_traced: FleetTiming {
                users: 4,
                threads: 2,
                transactions: 8,
                wall_secs: 0.6,
                tps: 13.3,
            },
            fleet_overhead_pct: 16.9,
            fleet_overhead_floor_pct: 12.1,
            trace_events: 100,
            trace_dumps: 0,
        };
        let _ = obs::metrics::take();
        let json = numbers.to_json();
        for key in [
            "\"experiment\"",
            "\"overhead_disabled_pct\"",
            "\"overhead_disabled_floor_pct\"",
            "\"overhead_enabled_pct\"",
            "\"overhead_floor_pct\"",
            "\"trace_events\"",
            "\"trace_dumps\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
