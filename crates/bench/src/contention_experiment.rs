//! F8 — shared-world contention: the knee curve and shared-cache growth.
//!
//! The paper's heavy-traffic concern (ROADMAP item 1) measured: a fixed
//! population of Entertainment users shares **one** cell, **one** WAP
//! gateway and **one** host computer ([`Topology::shared`]), and the
//! population is swept upward while the infrastructure stays put. Three
//! claims are produced and gated in `scripts/tier1.sh`:
//!
//! 1. **The knee.** With caches off, p99 latency is non-decreasing in
//!    population — queueing at the shared FCFS resources bends the tail
//!    upward while p50 moves far less (the knee shape).
//! 2. **Shared-cache growth.** With a long-TTL shared gateway cache,
//!    the hit rate *rises* with population: user B's GET is served by
//!    the entry user A just filled. Per-user caches can never show
//!    this — it is the signature of genuinely shared state.
//! 3. **Identities.** A 1-user shared world is byte-identical to the
//!    legacy per-user world, and every sweep point is byte-identical
//!    across 1/2/4 threads.
//!
//! `--f8` on the report binary writes `BENCH_contention.json`.

use std::fmt;

use mcommerce_core::{
    CachePolicy, Category, ContentionStats, FleetRun, FleetRunner, Scenario, Topology,
};
use simnet::SimDuration;

/// Fixed seed for every F8 population.
const F8_SEED: u64 = 801;

/// Sessions each user runs (Entertainment sessions are two steps).
const SESSIONS_PER_USER: u64 = 6;

/// Think time between sessions, seconds of sim time.
const THINK_SECS: f64 = 2.0;

/// One point of the population sweep, caches off.
#[derive(Debug, Clone)]
pub struct KneeRow {
    /// Stations sharing the one cell/gateway/host.
    pub users: u64,
    /// Median transaction latency, milliseconds.
    pub p50_ms: f64,
    /// Tail transaction latency, milliseconds.
    pub p99_ms: f64,
    /// Share of transactions that waited on a shared resource.
    pub contended_share: f64,
    /// Mean wait per transaction across all shared resources, ms.
    pub mean_wait_ms: f64,
    /// Cell airtime utilisation over the run's horizon (0..1).
    pub cell_utilisation: f64,
}

impl fmt::Display for KneeRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>4} users: p50 {:>8.1} ms, p99 {:>8.1} ms, contended {:>5.1}%, mean wait {:>8.2} ms, cell util {:>5.1}%",
            self.users,
            self.p50_ms,
            self.p99_ms,
            self.contended_share * 100.0,
            self.mean_wait_ms,
            self.cell_utilisation * 100.0,
        )
    }
}

/// One point of the shared-gateway-cache sweep.
#[derive(Debug, Clone)]
pub struct CacheGrowthRow {
    /// Stations behind the one shared gateway cache.
    pub users: u64,
    /// Hit rate of the shared gateway cache (0..1).
    pub hit_rate: f64,
    /// Raw hits.
    pub hits: u64,
    /// Raw misses.
    pub misses: u64,
}

impl fmt::Display for CacheGrowthRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>4} users: shared gateway cache hit rate {:>5.1}% ({} hits / {} misses)",
            self.users,
            self.hit_rate * 100.0,
            self.hits,
            self.misses,
        )
    }
}

/// The complete F8 result set.
#[derive(Debug, Clone)]
pub struct ContentionNumbers {
    /// Population sweep shared by both curves.
    pub populations: Vec<u64>,
    /// The knee curve, caches off.
    pub knee: Vec<KneeRow>,
    /// The shared-cache hit-rate curve, long-TTL gateway cache.
    pub cache_growth: Vec<CacheGrowthRow>,
    /// Whether the 1-user shared world came out byte-identical to the
    /// legacy per-user world (summary *and* JSONL trace).
    pub one_user_identical: bool,
    /// Whether every sweep point was byte-identical at 1/2/4 threads.
    pub thread_identity: bool,
}

impl fmt::Display for ContentionNumbers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "one shared cell + gateway + host, Entertainment, {} sessions/user, think {} s, seed {}",
            SESSIONS_PER_USER, THINK_SECS, F8_SEED
        )?;
        writeln!(f, "knee (caches off):")?;
        for row in &self.knee {
            writeln!(f, "  {row}")?;
        }
        writeln!(f, "shared gateway cache (long TTL):")?;
        for row in &self.cache_growth {
            writeln!(f, "  {row}")?;
        }
        writeln!(
            f,
            "1-user shared world identical to legacy world: {}",
            self.one_user_identical
        )?;
        write!(
            f,
            "every sweep point identical at 1/2/4 threads: {}",
            self.thread_identity
        )
    }
}

impl ContentionNumbers {
    /// Renders the artefact written to `BENCH_contention.json`.
    pub fn to_json(&self) -> String {
        let knee: Vec<String> = self
            .knee
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"users\": {}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"contended_share\": {:.4}, \"mean_wait_ms\": {:.4}, \"cell_utilisation\": {:.4} }}",
                    r.users, r.p50_ms, r.p99_ms, r.contended_share, r.mean_wait_ms, r.cell_utilisation
                )
            })
            .collect();
        let growth: Vec<String> = self
            .cache_growth
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"users\": {}, \"hit_rate\": {:.4}, \"hits\": {}, \"misses\": {} }}",
                    r.users, r.hit_rate, r.hits, r.misses
                )
            })
            .collect();
        format!(
            "{{\n  \"experiment\": \"F8_contention\",\n  \"sessions_per_user\": {},\n  \"think_secs\": {:.1},\n  \"knee\": [\n{}\n  ],\n  \"cache_growth\": [\n{}\n  ],\n  \"one_user_identical\": {},\n  \"thread_identity\": {}\n}}\n",
            SESSIONS_PER_USER,
            THINK_SECS,
            knee.join(",\n"),
            growth.join(",\n"),
            self.one_user_identical,
            self.thread_identity
        )
    }
}

/// The F8 scenario for one population. Entertainment browses a small
/// shared catalogue with clean GETs, so cross-user requests overlap —
/// the workload where shared infrastructure (and a shared cache)
/// actually matters.
fn sweep_scenario(users: u64) -> Scenario {
    Scenario::new("F8")
        .app(Category::Entertainment)
        .users(users)
        .sessions_per_user(SESSIONS_PER_USER)
        .think_time(THINK_SECS)
        .seed(F8_SEED)
}

/// One shared-world run on the single-cell topology.
fn run_point(scenario: &Scenario, threads: usize) -> FleetRun {
    FleetRunner::new(scenario.clone())
        .topology(Topology::shared())
        .threads(threads)
        .run()
}

fn knee_row(users: u64, run: &FleetRun) -> KneeRow {
    let workload = &run.report.summary.workload;
    let stats = run.contention.as_ref().expect("shared run");
    KneeRow {
        users,
        p50_ms: workload.counters.latency_percentile(50.0) * 1e3,
        p99_ms: workload.counters.latency_percentile(99.0) * 1e3,
        contended_share: if stats.transactions == 0 {
            0.0
        } else {
            stats.contended_transactions as f64 / stats.transactions as f64
        },
        mean_wait_ms: if stats.transactions == 0 {
            0.0
        } else {
            stats.total_wait_ns() as f64 / stats.transactions as f64 / 1e6
        },
        cell_utilisation: if stats.horizon_ns == 0 {
            0.0
        } else {
            stats.cell_busy_ns as f64 / stats.horizon_ns as f64
        },
    }
}

/// Runs the full F8 experiment. `quick` shrinks the populations for CI
/// smoke runs; seeds, topology and workload are identical either way.
pub fn run(quick: bool) -> ContentionNumbers {
    let populations: Vec<u64> = if quick {
        vec![1, 4, 12, 32]
    } else {
        vec![1, 8, 32, 96]
    };

    // The knee: caches off, so every GET pays the full path and the
    // shared FCFS servers see the whole offered load.
    let mut knee = Vec::new();
    let mut thread_identity = true;
    for &users in &populations {
        let scenario = sweep_scenario(users);
        let two = run_point(&scenario, 2);
        for threads in [1usize, 4] {
            let other = run_point(&scenario, threads);
            thread_identity &= other.report.summary == two.report.summary
                && other.contention == two.contention;
        }
        knee.push(knee_row(users, &two));
    }

    // Shared-cache growth: a TTL much longer than the run keeps every
    // fill live, so the hit rate measures pure cross-user sharing.
    let policy = CachePolicy::standard().ttl(SimDuration::from_secs(3600));
    let cache_growth = populations
        .iter()
        .map(|&users| {
            let run = run_point(&sweep_scenario(users).cache(policy), 2);
            let stats: &ContentionStats = run.contention.as_ref().expect("shared run");
            CacheGrowthRow {
                users,
                hit_rate: stats.gateway_hit_rate(),
                hits: stats.gateway_cache_hits,
                misses: stats.gateway_cache_misses,
            }
        })
        .collect();

    // 1-user identity: the degenerate shared world against the legacy
    // per-user engine, summaries and traces byte-for-byte.
    let solo = sweep_scenario(1);
    let legacy = FleetRunner::new(solo.clone()).traced(true).run();
    let degenerate = FleetRunner::new(solo)
        .topology(Topology::shared())
        .traced(true)
        .run();
    let one_user_identical = legacy.report.summary == degenerate.report.summary
        && legacy.trace.expect("traced").to_jsonl()
            == degenerate.trace.expect("traced").to_jsonl();

    ContentionNumbers {
        populations,
        knee,
        cache_growth,
        one_user_identical,
        thread_identity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f8_quick_holds_its_gates() {
        let numbers = run(true);
        assert!(numbers.one_user_identical);
        assert!(numbers.thread_identity);
        // The knee: p99 non-decreasing in population, and the largest
        // population actually contends.
        for pair in numbers.knee.windows(2) {
            assert!(
                pair[1].p99_ms >= pair[0].p99_ms,
                "p99 must not fall as population grows: {} then {}",
                pair[0].p99_ms,
                pair[1].p99_ms
            );
        }
        assert!(numbers.knee.last().unwrap().contended_share > 0.0);
        // Shared-cache growth: the largest population beats the 1-user
        // hit rate strictly.
        let first = numbers.cache_growth.first().unwrap();
        let last = numbers.cache_growth.last().unwrap();
        assert!(
            last.hit_rate > first.hit_rate,
            "shared cache must help more with more users: {} vs {}",
            last.hit_rate,
            first.hit_rate
        );
    }

    #[test]
    fn f8_json_is_shaped_like_the_artefact() {
        let numbers = run(true);
        let json = numbers.to_json();
        assert!(json.contains("\"experiment\": \"F8_contention\""));
        assert!(json.contains("\"knee\""));
        assert!(json.contains("\"cache_growth\""));
        assert!(json.contains("\"one_user_identical\": true"));
        assert!(json.contains("\"thread_identity\": true"));
    }
}
