//! F6 — fault injection and recovery: availability and tail latency
//! under a deterministic fault storm, with and without the retry policy.
//!
//! The paper's MC system adds two components the EC baseline does not
//! have — the wireless network and the mobile middleware — and both
//! fail in ways a wired desktop never sees (§5.2's error-prone
//! channels, handoffs and disconnections). This experiment prices that
//! fragility and what the resilience layer buys back:
//!
//! 1. **Fault-intensity sweep.** The same fixed-seed fleet runs under
//!    [`FaultPlan::storm`] at increasing intensity, once bare and once
//!    hardened (retry policy + textual-middleware fallback). CI gates on
//!    the hardened fleet strictly dominating the bare one whenever the
//!    storm injects anything.
//! 2. **EC reference.** The identical workload on the four-component
//!    wired baseline — no wireless, gateway or transcoder to fault.
//! 3. **Zero-fault identity.** A fleet carrying an *empty* plan and the
//!    no-retry policy is asserted byte-identical to a plan-free fleet at
//!    a different thread count: the fault machinery is provably free
//!    when unused.
//! 4. **Dead-peer transport abort.** At packet granularity, the fault
//!    driver kills the wireless leg mid-transfer and the TCP sender must
//!    abort after [`transport::MAX_CONSECUTIVE_RTOS`] — not retransmit
//!    at `MAX_RTO` forever (the `Snd.backoff` write-only regression).
//!
//! Results are written as the `BENCH_faults.json` artefact.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use bytes::Bytes;
use faults::{driver, FaultKind, FaultPlan, RetryPolicy};
use mcommerce_core::apps::for_category;
use mcommerce_core::workload::run_workload;
use mcommerce_core::{fleet, Category, EcSystem, FleetRunner, MiddlewareKind, Scenario, WiredPath};
use netstack::node::Network;
use netstack::{Ip, Subnet};
use simnet::link::LinkParams;
use simnet::trace::Trace;
use simnet::{SimDuration, SimTime, Simulator};
use transport::{SocketAddr, State, Tcp};

use hostsite::db::Database;
use hostsite::HostComputer;

const FIXED: Ip = Ip::new(10, 0, 0, 1);
const BS: Ip = Ip::new(10, 0, 0, 254);
const MOBILE: Ip = Ip::new(172, 16, 0, 5);

/// Sim-time span every storm covers; the scenario's think time spreads
/// each user's sessions across the same span.
const STORM_HORIZON: SimDuration = SimDuration::from_secs(30);

/// Seed of the storm generator (fixed: every run sees the same faults).
const STORM_SEED: u64 = 4242;

/// One row of the fault-intensity sweep: the same fleet bare vs hardened.
#[derive(Debug, Clone)]
pub struct FaultSweepRow {
    /// Storm intensity multiplier (0 = no faults injected).
    pub intensity: f64,
    /// Success rate of the fleet without any recovery policy.
    pub bare_availability: f64,
    /// p99 transaction latency without recovery, seconds.
    pub bare_p99_s: f64,
    /// Success rate with retry + fallback middleware.
    pub retry_availability: f64,
    /// p99 transaction latency with recovery, seconds (retries fold the
    /// failed attempts' latency into the settled transaction).
    pub retry_p99_s: f64,
    /// Retry attempts the hardened fleet spent.
    pub retries: u64,
}

impl fmt::Display for FaultSweepRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "intensity {:>4.1}: bare {:>6.2}% avail (p99 {:>7.1} ms) | hardened {:>6.2}% avail (p99 {:>7.1} ms, {} retries)",
            self.intensity,
            self.bare_availability * 100.0,
            self.bare_p99_s * 1e3,
            self.retry_availability * 100.0,
            self.retry_p99_s * 1e3,
            self.retries,
        )
    }
}

/// Outcome of the packet-granularity dead-peer demonstration.
#[derive(Debug, Clone)]
pub struct DeadPeerOutcome {
    /// Whether the sender reached [`State::Aborted`] (the fixed bug
    /// would leave it retransmitting forever).
    pub aborted: bool,
    /// Sim time at which the abort fired, seconds.
    pub abort_secs: f64,
    /// RTOs the sender took before giving up.
    pub sender_rtos: u64,
    /// The error surfaced to the application layer.
    pub reason: String,
}

/// The complete F6 result set.
#[derive(Debug, Clone)]
pub struct FaultsNumbers {
    /// Users in the sweep fleet.
    pub users: u64,
    /// Sessions per user.
    pub sessions_per_user: u64,
    /// The intensity sweep, bare vs hardened.
    pub sweep: Vec<FaultSweepRow>,
    /// EC baseline availability over the same workload volume.
    pub ec_availability: f64,
    /// EC baseline p99 latency, seconds.
    pub ec_p99_s: f64,
    /// Whether an empty plan + no-retry policy fleet came out
    /// byte-identical to a plan-free fleet at a different thread count.
    pub zero_fault_identical: bool,
    /// Trace events naming injected faults or retry backoffs in the
    /// traced storm fleet.
    pub fault_trace_events: u64,
    /// Flight-recorder dumps (failed transactions) in the traced fleet.
    pub fault_dumps: u64,
    /// The dead-peer transport abort demonstration.
    pub dead_peer: DeadPeerOutcome,
}

impl fmt::Display for FaultsNumbers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} users × {} sessions, storm over {} s (seed {})",
            self.users,
            self.sessions_per_user,
            STORM_HORIZON.as_secs_f64(),
            STORM_SEED
        )?;
        for row in &self.sweep {
            writeln!(f, "  {row}")?;
        }
        writeln!(
            f,
            "  EC reference: {:.2}% avail (p99 {:.1} ms) — nothing to fault",
            self.ec_availability * 100.0,
            self.ec_p99_s * 1e3
        )?;
        writeln!(
            f,
            "zero-fault fleet identical to plan-free fleet: {}",
            self.zero_fault_identical
        )?;
        writeln!(
            f,
            "flight recorder: {} fault/retry events, {} failure dumps",
            self.fault_trace_events, self.fault_dumps
        )?;
        write!(
            f,
            "dead peer: aborted={} after {:.1} s and {} RTOs ({})",
            self.dead_peer.aborted,
            self.dead_peer.abort_secs,
            self.dead_peer.sender_rtos,
            self.dead_peer.reason
        )
    }
}

impl FaultsNumbers {
    /// Renders the result as the `BENCH_faults.json` document.
    pub fn to_json(&self) -> String {
        let sweep: Vec<String> = self
            .sweep
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"intensity\": {:.2}, \"bare_availability\": {:.6}, \"bare_p99_s\": {:.6}, \"retry_availability\": {:.6}, \"retry_p99_s\": {:.6}, \"retries\": {} }}",
                    r.intensity,
                    r.bare_availability,
                    r.bare_p99_s,
                    r.retry_availability,
                    r.retry_p99_s,
                    r.retries
                )
            })
            .collect();
        format!(
            "{{\n  \"experiment\": \"F6_faults\",\n  \"users\": {},\n  \"sessions_per_user\": {},\n  \"storm_horizon_s\": {:.1},\n  \"sweep\": [\n{}\n  ],\n  \"ec\": {{ \"availability\": {:.6}, \"p99_s\": {:.6} }},\n  \"zero_fault_identical\": {},\n  \"trace\": {{ \"fault_events\": {}, \"fault_dumps\": {} }},\n  \"dead_peer\": {{ \"aborted\": {}, \"abort_secs\": {:.3}, \"sender_rtos\": {} }}\n}}\n",
            self.users,
            self.sessions_per_user,
            STORM_HORIZON.as_secs_f64(),
            sweep.join(",\n"),
            self.ec_availability,
            self.ec_p99_s,
            self.zero_fault_identical,
            self.fault_trace_events,
            self.fault_dumps,
            self.dead_peer.aborted,
            self.dead_peer.abort_secs,
            self.dead_peer.sender_rtos
        )
    }
}

/// The fixed-seed fleet the sweep perturbs: commerce sessions spread
/// across the storm horizon by think time.
pub fn sweep_scenario(quick: bool) -> Scenario {
    Scenario::new("F6")
        .app(Category::Commerce)
        .users(if quick { 24 } else { 96 })
        .sessions_per_user(8)
        .think_time(3.0)
        .seed(401)
}

/// Hardens a scenario: the standard retry policy plus graceful
/// degradation to textual WML when the gateway path fails.
fn harden(scenario: Scenario) -> Scenario {
    scenario
        .retry(RetryPolicy::standard())
        .fallback_middleware(MiddlewareKind::WapTextual)
}

/// Runs the identical workload volume through the EC baseline. Mirrors
/// the fleet's semantics — one fresh host world per user — so finite
/// inventory never depletes across users and the only difference left
/// is the architecture (nothing wireless to fault).
fn ec_reference(scenario: &Scenario) -> (f64, f64) {
    let app = for_category(scenario.app);
    let mut merged: Option<mcommerce_core::WorkloadSummary> = None;
    for user in 0..scenario.users {
        let mut host = HostComputer::new(Database::new(), 1);
        app.install(&mut host);
        let mut ec = EcSystem::new(host, WiredPath::wan());
        let summary = run_workload(
            &mut ec,
            app.as_ref(),
            scenario.sessions_per_user,
            scenario.seed.wrapping_add(user),
        );
        merged = Some(match merged {
            Some(acc) => acc.merge(&summary),
            None => summary,
        });
    }
    let summary = merged.expect("at least one user");
    (
        summary.success_rate(),
        summary.counters.latency_percentile(99.0),
    )
}

/// Packet-granularity dead-peer demonstration: the fault driver blacks
/// out the wireless leg for good mid-transfer; the TCP sender must
/// abort and surface the error instead of retransmitting forever.
pub fn dead_peer_demo() -> DeadPeerOutcome {
    let mut sim = Simulator::new();
    let trace = Trace::bounded(16);

    let mut net = Network::new();
    let fixed = net.add_node("fixed", FIXED);
    let bs = net.add_node("bs", BS);
    let mobile = net.add_node("mobile", MOBILE);
    Network::connect(
        &fixed,
        FIXED,
        &bs,
        BS,
        LinkParams::reliable(10_000_000, SimDuration::from_millis(100)),
    );
    let (down, up) = Network::connect(
        &bs,
        BS,
        &mobile,
        MOBILE,
        LinkParams::reliable(2_000_000, SimDuration::from_millis(5)),
    );
    fixed.add_route(Subnet::DEFAULT, BS);
    mobile.add_route(Subnet::DEFAULT, BS);

    let tcp_fixed = Tcp::install(Rc::clone(&fixed), trace.clone());
    let _tcp_bs = Tcp::install(Rc::clone(&bs), trace.clone());
    let tcp_mobile = Tcp::install(Rc::clone(&mobile), trace.clone());
    tcp_mobile.listen(80, |_sim, conn| {
        conn.on_data(|_sim, _data: Bytes| {});
    });

    // The mobile leaves coverage for good 100 ms into the transfer: an
    // effectively unbounded wireless outage, armed via the fault driver.
    let plan = FaultPlan::none().window(
        SimDuration::from_millis(100),
        SimDuration::from_secs(3_600),
        FaultKind::WirelessOutage,
    );
    driver::arm(&mut sim, &plan, &down);
    driver::arm(&mut sim, &plan, &up);

    let errors: Rc<RefCell<Vec<String>>> = Rc::default();
    let abort_at: Rc<Cell<f64>> = Rc::new(Cell::new(0.0));
    let sender = tcp_fixed.connect(&mut sim, FIXED, SocketAddr::new(MOBILE, 80));
    {
        let errors = Rc::clone(&errors);
        let abort_at = Rc::clone(&abort_at);
        sender.on_error(move |sim, reason| {
            errors.borrow_mut().push(reason.to_owned());
            abort_at.set(sim.now().as_secs_f64());
        });
    }
    sender.send_bytes(&mut sim, Bytes::from(vec![0x5Au8; 500_000]));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(600));

    let reason = errors.borrow().first().cloned().unwrap_or_default();
    DeadPeerOutcome {
        aborted: sender.state() == State::Aborted,
        abort_secs: abort_at.get(),
        sender_rtos: sender.stats.rtos.get(),
        reason,
    }
}

/// Runs the full F6 experiment. `quick` shrinks the fleet for CI smoke
/// runs; seeds, storm and sweep grid are identical either way.
pub fn run(quick: bool) -> FaultsNumbers {
    let base = sweep_scenario(quick);
    let threads = fleet::default_threads();

    let mut sweep = Vec::new();
    for &intensity in &[0.0, 0.5, 1.0, 2.0] {
        let storm = FaultPlan::storm(STORM_SEED, STORM_HORIZON, intensity);
        let bare = FleetRunner::new(base.clone().faults(storm.clone()))
            .threads(threads)
            .run()
            .report
            .summary;
        let hardened = FleetRunner::new(harden(base.clone().faults(storm)))
            .threads(threads)
            .run()
            .report
            .summary;
        sweep.push(FaultSweepRow {
            intensity,
            bare_availability: bare.workload.success_rate(),
            bare_p99_s: bare.workload.counters.latency_percentile(99.0),
            retry_availability: hardened.workload.success_rate(),
            retry_p99_s: hardened.workload.counters.latency_percentile(99.0),
            retries: hardened.workload.counters.retries,
        });
    }

    let (ec_availability, ec_p99_s) = ec_reference(&base);

    // Zero-fault identity, cross-checked at different thread counts.
    let plain = FleetRunner::new(base.clone()).threads(2).run().report.summary;
    let armed = FleetRunner::new(
        base.clone()
            .faults(FaultPlan::none())
            .retry(RetryPolicy::none()),
    )
    .threads(4)
    .run()
    .report
    .summary;
    let zero_fault_identical = plain == armed;

    // Injected faults must be visible in the flight recorder.
    let storm = FaultPlan::storm(STORM_SEED, STORM_HORIZON, 1.0);
    let traced_scenario = harden(base.clone().users(base.users.min(8)).faults(storm));
    let trace = FleetRunner::new(traced_scenario)
        .threads(threads)
        .traced(true)
        .run()
        .trace
        .expect("traced run carries a trace");
    let fault_trace_events = trace
        .events
        .iter()
        .filter(|e| {
            e.name.contains("fault:")
                || e.name.contains("outage")
                || e.name.contains("retry_backoff")
                || e.name.contains("recovering")
                || e.name.contains("transcode degraded")
        })
        .count() as u64;

    FaultsNumbers {
        users: base.users,
        sessions_per_user: base.sessions_per_user,
        sweep,
        ec_availability,
        ec_p99_s,
        zero_fault_identical,
        fault_trace_events,
        fault_dumps: trace.dumps.len() as u64,
        dead_peer: dead_peer_demo(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_peer_aborts_promptly_with_a_reason() {
        let outcome = dead_peer_demo();
        assert!(outcome.aborted, "sender must abort, not retransmit forever");
        assert!(outcome.sender_rtos >= transport::MAX_CONSECUTIVE_RTOS as u64);
        assert!(outcome.abort_secs < 300.0, "{}", outcome.abort_secs);
        assert!(outcome.reason.contains("retransmission limit"), "{}", outcome.reason);
    }

    #[test]
    fn quick_sweep_shows_retry_dominating_under_faults() {
        let numbers = run(true);
        for row in &numbers.sweep {
            if row.intensity == 0.0 {
                assert_eq!(row.bare_availability, 1.0, "no faults, no failures");
                assert_eq!(row.retries, 0, "nothing to retry at intensity 0");
            } else {
                assert!(
                    row.retry_availability > row.bare_availability,
                    "intensity {}: {} !> {}",
                    row.intensity,
                    row.retry_availability,
                    row.bare_availability
                );
            }
        }
        assert!(numbers.zero_fault_identical);
        assert!(numbers.fault_trace_events > 0);
        let json = numbers.to_json();
        assert!(json.contains("\"zero_fault_identical\": true"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
