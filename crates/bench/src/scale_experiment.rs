//! F9 — fleet scale: wall-clock, throughput and memory across
//! populations and thread counts.
//!
//! F3 established that the merged summary is thread-count invariant at
//! workshop populations. F9 is the scale experiment behind the "million
//! users in seconds" claim: the full grid of populations {10 k, 100 k,
//! 1 M} × threads {1, 4, 8}, each cell measured for wall-clock seconds,
//! engine events per second, transactions per second, and peak resident
//! set size — rendered as the `BENCH_scale.json` artefact.
//!
//! # What an "event" is
//!
//! The fleet engine is analytic — there is no inner discrete-event
//! queue on the isolated path — so F9 counts the engine's discrete
//! *actions*: one per user world built (and torn down), one per
//! transaction executed, one per think-time idle. With the F9 scenario
//! (one session, no think time) that is `users + transactions`,
//! reported exactly.
//!
//! # Measurement discipline
//!
//! Every cell runs in its **own subprocess** (the report binary
//! re-executes itself with a hidden `--f9-cell` flag). That is what
//! makes peak RSS honest: `VmHWM` is a process-lifetime high-water
//! mark, so in-process cells would report the largest population's
//! footprint for every later cell. A subprocess also gives each cell a
//! cold allocator, so the RSS curve is a function of the population,
//! not of the run order.
//!
//! # The identity gate
//!
//! Each cell digests its merged [`WorkloadCounters`] (FNV-1a 64 over
//! the full debug rendering — every counter, histogram bucket and
//! failure string). [`run`] asserts the digest is identical across
//! thread counts at every population; `scripts/tier1.sh` checks the
//! same invariant on the emitted JSON.

use std::fmt;
use std::process::Command;
use std::time::Instant;

use mcommerce_core::{Category, FleetRunner, Scenario};

/// One measured grid cell.
#[derive(Debug, Clone)]
pub struct ScaleCell {
    /// Simulated users.
    pub users: u64,
    /// Worker threads requested.
    pub threads: usize,
    /// Wall-clock seconds for the whole fleet run.
    pub wall_secs: f64,
    /// Transactions executed.
    pub transactions: u64,
    /// Transactions per wall-clock second.
    pub tps: f64,
    /// Discrete engine actions (user worlds + transactions + thinks).
    pub events: u64,
    /// Engine actions per wall-clock second.
    pub events_per_sec: f64,
    /// Peak resident set size of the cell's process, bytes (0 when the
    /// platform exposes no `VmHWM`).
    pub peak_rss_bytes: u64,
    /// FNV-1a 64 digest of the merged workload counters, hex.
    pub digest: String,
}

impl ScaleCell {
    /// Renders the cell as a JSON object (one line, no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"users\": {}, \"threads\": {}, \"wall_secs\": {:.6}, \"transactions\": {}, \"tps\": {:.1}, \"events\": {}, \"events_per_sec\": {:.1}, \"peak_rss_bytes\": {}, \"digest\": \"{}\" }}",
            self.users,
            self.threads,
            self.wall_secs,
            self.transactions,
            self.tps,
            self.events,
            self.events_per_sec,
            self.peak_rss_bytes,
            self.digest,
        )
    }
}

/// The complete F9 result grid.
#[derive(Debug, Clone)]
pub struct ScaleNumbers {
    /// Populations swept, ascending.
    pub populations: Vec<u64>,
    /// Thread counts swept, ascending.
    pub threads: Vec<usize>,
    /// Measured cells, population-major then thread order.
    pub cells: Vec<ScaleCell>,
}

impl ScaleNumbers {
    /// Renders the grid as the `BENCH_scale.json` document.
    pub fn to_json(&self) -> String {
        let populations: Vec<String> = self.populations.iter().map(u64::to_string).collect();
        let threads: Vec<String> = self.threads.iter().map(usize::to_string).collect();
        let cells: Vec<String> = self.cells.iter().map(|c| format!("    {}", c.to_json())).collect();
        format!(
            "{{\n  \"experiment\": \"F9_scale\",\n  \"populations\": [{}],\n  \"threads\": [{}],\n  \"identical_across_threads\": true,\n  \"cells\": [\n{}\n  ]\n}}\n",
            populations.join(", "),
            threads.join(", "),
            cells.join(",\n"),
        )
    }
}

impl fmt::Display for ScaleNumbers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>9} {:>7} {:>9} {:>12} {:>12} {:>12} {:>9}",
            "users", "threads", "wall s", "txns/s", "events/s", "peak RSS", "digest"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "{:>9} {:>7} {:>9.3} {:>12.0} {:>12.0} {:>9.1} MB  {}",
                c.users,
                c.threads,
                c.wall_secs,
                c.tps,
                c.events_per_sec,
                c.peak_rss_bytes as f64 / (1024.0 * 1024.0),
                &c.digest,
            )?;
        }
        write!(f, "merged counters identical across thread counts at every population")
    }
}

/// The F9 scenario for one population: the Commerce workload, one
/// session per user, caches off — the leanest end-to-end transaction,
/// so the measurement isolates the engine, not a cache policy.
pub fn scenario(users: u64) -> Scenario {
    Scenario::new("F9")
        .app(Category::Commerce)
        .users(users)
        .sessions_per_user(1)
        .seed(97)
}

/// FNV-1a 64 over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Peak resident set size of this process, bytes (`VmHWM`), 0 when the
/// platform does not expose it.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Runs one grid cell **in this process** and measures it. This is what
/// the hidden `--f9-cell` mode of the report binary calls; the peak-RSS
/// number is only meaningful when the process ran nothing bigger first.
pub fn run_cell(users: u64, threads: usize) -> ScaleCell {
    let scenario = scenario(users);
    let started = Instant::now();
    let run = FleetRunner::new(scenario).threads(threads).run();
    let wall_secs = started.elapsed().as_secs_f64();
    let report = run.report;
    let transactions = report.summary.transactions();
    // Think actions: (sessions − 1) idles per user when think time is on.
    let events = users + transactions;
    let digest = fnv1a(format!("{:?}", report.summary.workload.counters).as_bytes());
    ScaleCell {
        users,
        threads,
        wall_secs,
        transactions,
        tps: transactions as f64 / wall_secs,
        events,
        events_per_sec: events as f64 / wall_secs,
        peak_rss_bytes: peak_rss_bytes(),
        digest: format!("{digest:016x}"),
    }
}

/// Extracts `"key": <value>` from a one-object JSON line (the cell
/// subprocess's output — flat, machine-generated, so plain string
/// scanning is exact).
fn json_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find([',', '}'])
        .unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Parses a subprocess cell line back into a [`ScaleCell`].
fn parse_cell(json: &str) -> Option<ScaleCell> {
    Some(ScaleCell {
        users: json_field(json, "users")?.parse().ok()?,
        threads: json_field(json, "threads")?.parse().ok()?,
        wall_secs: json_field(json, "wall_secs")?.parse().ok()?,
        transactions: json_field(json, "transactions")?.parse().ok()?,
        tps: json_field(json, "tps")?.parse().ok()?,
        events: json_field(json, "events")?.parse().ok()?,
        events_per_sec: json_field(json, "events_per_sec")?.parse().ok()?,
        peak_rss_bytes: json_field(json, "peak_rss_bytes")?.parse().ok()?,
        digest: json_field(json, "digest")?.to_owned(),
    })
}

/// Runs one cell in a fresh subprocess of the current binary (hidden
/// `--f9-cell` mode), so its peak RSS is its own. Falls back to an
/// in-process run when re-execution is unavailable.
fn run_cell_isolated(users: u64, threads: usize) -> ScaleCell {
    let child = std::env::current_exe().ok().and_then(|exe| {
        Command::new(exe)
            .args(["--f9-cell", &users.to_string(), &threads.to_string()])
            .output()
            .ok()
    });
    if let Some(out) = child {
        if out.status.success() {
            let stdout = String::from_utf8_lossy(&out.stdout);
            if let Some(cell) = stdout.lines().rev().find_map(parse_cell) {
                return cell;
            }
        }
    }
    run_cell(users, threads)
}

/// Runs the full F9 grid. `quick` drops the million-user column for
/// smoke runs; both modes assert the cross-thread identity gate.
pub fn run(quick: bool) -> ScaleNumbers {
    let populations: Vec<u64> = if quick {
        vec![10_000, 100_000]
    } else {
        vec![10_000, 100_000, 1_000_000]
    };
    let threads = vec![1usize, 4, 8];
    let mut cells = Vec::new();
    for &users in &populations {
        let mut reference: Option<&str> = None;
        let lo = cells.len();
        for &t in &threads {
            cells.push(run_cell_isolated(users, t));
        }
        for cell in &cells[lo..] {
            match reference {
                None => reference = Some(&cell.digest),
                Some(reference) => assert_eq!(
                    reference, cell.digest,
                    "{} users: merged counters must be byte-identical at every thread count",
                    users
                ),
            }
        }
    }
    ScaleNumbers {
        populations,
        threads,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_measures_and_digests() {
        let a = run_cell(50, 2);
        assert_eq!(a.users, 50);
        assert_eq!(a.transactions, 100); // two-step Commerce session
        assert_eq!(a.events, 150);
        assert!(a.wall_secs > 0.0 && a.tps > 0.0 && a.events_per_sec > 0.0);
        assert_eq!(a.digest.len(), 16);
        // The digest is a function of the merged counters alone.
        let b = run_cell(50, 5);
        assert_eq!(a.digest, b.digest);
        let c = run_cell(51, 2);
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn cell_json_round_trips() {
        let cell = run_cell(10, 1);
        let parsed = parse_cell(&cell.to_json()).expect("parses");
        assert_eq!(parsed.users, cell.users);
        assert_eq!(parsed.threads, cell.threads);
        assert_eq!(parsed.transactions, cell.transactions);
        assert_eq!(parsed.peak_rss_bytes, cell.peak_rss_bytes);
        assert_eq!(parsed.digest, cell.digest);
        // to_json prints wall_secs with 6 decimals: half-ulp tolerance.
        assert!((parsed.wall_secs - cell.wall_secs).abs() <= 5e-7);
    }

    #[test]
    fn grid_json_has_the_schema_tier1_checks() {
        let numbers = ScaleNumbers {
            populations: vec![10, 20],
            threads: vec![1, 2],
            cells: vec![run_cell(10, 1)],
        };
        let json = numbers.to_json();
        for key in [
            "\"experiment\"",
            "\"F9_scale\"",
            "\"populations\"",
            "\"threads\"",
            "\"identical_across_threads\"",
            "\"cells\"",
            "\"peak_rss_bytes\"",
            "\"digest\"",
            "\"events_per_sec\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
