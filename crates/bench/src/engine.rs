//! F4 — event-engine throughput: timer wheel vs. the reference heap.
//!
//! The hot path of every experiment in this crate is the simulator's
//! scheduler. This module measures it directly: a storm of concurrent
//! self-rescheduling timers (the access pattern TCP retransmission
//! timers, link transits, and think-time delays produce) is run through
//! the production timer-wheel engine ([`simnet::Simulator`]) and through
//! the reference `BinaryHeap` engine kept for comparison
//! ([`simnet::BaselineSimulator`]). Both execute the *identical* virtual
//! workload — same delays, same closure work, same final accumulator —
//! so the wall-clock ratio isolates the scheduler itself.
//!
//! [`run`] packages the microbenchmark together with a wall-clock timing
//! of a full fleet run and renders everything as the `BENCH_engine.json`
//! artefact consumed by CI and the README.

use std::cell::Cell;
use std::fmt;
use std::time::Instant;

use mcommerce_core::{Category, FleetRunner, Scenario};
use simnet::{BaselineSimulator, SimDuration, Simulator};

/// One timed engine run of the timer-storm microbenchmark.
#[derive(Debug, Clone)]
pub struct ThroughputSample {
    /// Engine name (`"wheel"` or `"heap"`).
    pub engine: &'static str,
    /// Events executed.
    pub events: u64,
    /// Wall-clock seconds for schedule + run.
    pub wall_secs: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Workload checksum (must match across engines).
    pub checksum: u64,
}

/// Wall-clock timing of a full end-to-end fleet run.
#[derive(Debug, Clone)]
pub struct FleetTiming {
    /// Simulated users.
    pub users: u64,
    /// OS threads the fleet was sharded across.
    pub threads: usize,
    /// Transactions executed.
    pub transactions: u64,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Transactions per wall-clock second.
    pub tps: f64,
}

/// The complete F4 result set.
#[derive(Debug, Clone)]
pub struct EngineNumbers {
    /// Concurrent timers in the storm.
    pub timers: u64,
    /// Re-schedules per timer.
    pub hops: u64,
    /// Production timer-wheel engine.
    pub wheel: ThroughputSample,
    /// Reference `BinaryHeap` engine.
    pub heap: ThroughputSample,
    /// `wheel.events_per_sec / heap.events_per_sec`.
    pub speedup: f64,
    /// End-to-end fleet wall time on the production engine.
    pub fleet: FleetTiming,
}

impl fmt::Display for EngineNumbers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "timer storm: {} timers × {} hops = {} events",
            self.timers, self.hops, self.wheel.events
        )?;
        for s in [&self.wheel, &self.heap] {
            writeln!(
                f,
                "  {:<5} engine: {:>8.3} s = {:>12.0} events/s",
                s.engine, s.wall_secs, s.events_per_sec
            )?;
        }
        writeln!(f, "  speedup: {:.2}x (wheel vs heap)", self.speedup)?;
        write!(
            f,
            "fleet: {} users × {} thread(s): {} txns in {:.3} s = {:.0} txns/s",
            self.fleet.users,
            self.fleet.threads,
            self.fleet.transactions,
            self.fleet.wall_secs,
            self.fleet.tps
        )
    }
}

impl EngineNumbers {
    /// Renders the result as the `BENCH_engine.json` document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"F4_engine\",\n  \"timers\": {},\n  \"hops\": {},\n  \"events\": {},\n  \"wheel\": {{ \"wall_secs\": {:.6}, \"events_per_sec\": {:.1} }},\n  \"heap\": {{ \"wall_secs\": {:.6}, \"events_per_sec\": {:.1} }},\n  \"speedup\": {:.3},\n  \"fleet\": {{ \"users\": {}, \"threads\": {}, \"transactions\": {}, \"wall_secs\": {:.6}, \"tps\": {:.1} }}\n}}\n",
            self.timers,
            self.hops,
            self.wheel.events,
            self.wheel.wall_secs,
            self.wheel.events_per_sec,
            self.heap.wall_secs,
            self.heap.events_per_sec,
            self.speedup,
            self.fleet.users,
            self.fleet.threads,
            self.fleet.transactions,
            self.fleet.wall_secs,
            self.fleet.tps
        )
    }
}

/// SplitMix64: the timer delays are a pure function of `(timer, hop)`,
/// so both engines replay exactly the same schedule.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Delay for a given `(timer, hop)`, spread over every wheel level:
/// sub-tick, level 0, level 1, and overflow delays in a 16:8:7:1 mix
/// that mirrors a fleet's blend of link transits, think times, and RTOs.
pub(crate) fn delay_ns(timer: u64, hop: u64) -> u64 {
    let d = mix(timer.wrapping_mul(0x1_0000_0001).wrapping_add(hop));
    match d % 32 {
        0..=15 => d % 100_000,            // sub-tick / level 0
        16..=23 => d % 30_000_000,        // level 0 span
        24..=30 => d % 8_000_000_000,     // level 1 span
        _ => 9_000_000_000 + d % 50_000_000_000, // overflow
    }
}

thread_local! {
    /// Workload checksum. Thread-local (rather than an `Rc<Cell>` captured
    /// by every closure) so per-event bookkeeping common to both engines
    /// stays off the scale: what's timed is the scheduler, and the
    /// closures capture only two words.
    static ACC: Cell<u64> = const { Cell::new(0) };
}

fn hop_wheel(sim: &mut Simulator, timer: u64, hop: u64) {
    ACC.with(|acc| acc.set(acc.get().wrapping_add(timer ^ hop)));
    if hop == 0 {
        return;
    }
    sim.schedule_in(
        SimDuration::from_nanos(delay_ns(timer, hop)),
        move |s: &mut Simulator| hop_wheel(s, timer, hop - 1),
    );
}

fn hop_heap(sim: &mut BaselineSimulator, timer: u64, hop: u64) {
    ACC.with(|acc| acc.set(acc.get().wrapping_add(timer ^ hop)));
    if hop == 0 {
        return;
    }
    sim.schedule_in(
        SimDuration::from_nanos(delay_ns(timer, hop)),
        move |s: &mut BaselineSimulator| hop_heap(s, timer, hop - 1),
    );
}

/// Times the timer storm on the production wheel engine.
pub fn wheel_throughput(timers: u64, hops: u64) -> ThroughputSample {
    ACC.with(|acc| acc.set(0));
    let start = Instant::now();
    let mut sim = Simulator::new();
    for timer in 0..timers {
        sim.schedule_in(
            SimDuration::from_nanos(delay_ns(timer, hops)),
            move |s: &mut Simulator| hop_wheel(s, timer, hops - 1),
        );
    }
    sim.run();
    let wall_secs = start.elapsed().as_secs_f64();
    let events = sim.events_processed();
    assert_eq!(events, timers * hops);
    ThroughputSample {
        engine: "wheel",
        events,
        wall_secs,
        events_per_sec: events as f64 / wall_secs,
        checksum: ACC.with(|acc| acc.get()),
    }
}

/// Times the identical storm on the reference `BinaryHeap` engine.
pub fn heap_throughput(timers: u64, hops: u64) -> ThroughputSample {
    ACC.with(|acc| acc.set(0));
    let start = Instant::now();
    let mut sim = BaselineSimulator::new();
    for timer in 0..timers {
        sim.schedule_in(
            SimDuration::from_nanos(delay_ns(timer, hops)),
            move |s: &mut BaselineSimulator| hop_heap(s, timer, hops - 1),
        );
    }
    sim.run();
    let wall_secs = start.elapsed().as_secs_f64();
    let events = sim.events_processed();
    assert_eq!(events, timers * hops);
    ThroughputSample {
        engine: "heap",
        events,
        wall_secs,
        events_per_sec: events as f64 / wall_secs,
        checksum: ACC.with(|acc| acc.get()),
    }
}

/// Runs the full F4 experiment.
///
/// `quick` shrinks the storm and the fleet for CI smoke runs; the real
/// report uses 128 Ki concurrent timers and the 10 000-user fleet. The
/// best of three back-to-back runs is kept per engine to shed scheduler
/// noise.
pub fn run(quick: bool) -> EngineNumbers {
    let (timers, hops, fleet_users) = if quick {
        (32_768u64, 16u64, 500u64)
    } else {
        (131_072, 32, 10_000)
    };

    let best = |f: &dyn Fn() -> ThroughputSample| {
        let mut best: Option<ThroughputSample> = None;
        for _ in 0..3 {
            let s = f();
            if best.as_ref().is_none_or(|b| s.wall_secs < b.wall_secs) {
                best = Some(s);
            }
        }
        best.expect("three runs")
    };
    let wheel = best(&|| wheel_throughput(timers, hops));
    let heap = best(&|| heap_throughput(timers, hops));
    assert_eq!(
        wheel.checksum, heap.checksum,
        "both engines must execute the identical virtual workload"
    );
    let speedup = wheel.events_per_sec / heap.events_per_sec;

    let scenario = Scenario::new("F4")
        .app(Category::Commerce)
        .users(fleet_users)
        .seed(97);
    let report = FleetRunner::new(scenario).run().report;
    let fleet = FleetTiming {
        users: fleet_users,
        threads: report.threads,
        transactions: report.summary.transactions(),
        wall_secs: report.wall_secs,
        tps: report.throughput_tps(),
    };

    EngineNumbers {
        timers,
        hops,
        wheel,
        heap,
        speedup,
        fleet,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_engines_do_the_same_virtual_work() {
        let wheel = wheel_throughput(64, 8);
        let heap = heap_throughput(64, 8);
        assert_eq!(wheel.events, 64 * 8);
        assert_eq!(wheel.events, heap.events);
        assert_eq!(wheel.checksum, heap.checksum);
        assert!(wheel.events_per_sec > 0.0 && heap.events_per_sec > 0.0);
    }

    #[test]
    fn json_is_well_formed_enough_to_round_trip_keys() {
        let numbers = run(true);
        let json = numbers.to_json();
        for key in [
            "\"experiment\"",
            "\"wheel\"",
            "\"heap\"",
            "\"speedup\"",
            "\"fleet\"",
            "\"events_per_sec\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn delays_cover_every_wheel_level() {
        let (mut sub, mut l0, mut l1, mut over) = (0u32, 0u32, 0u32, 0u32);
        for timer in 0..512u64 {
            for hop in 0..4 {
                match delay_ns(timer, hop) {
                    0..=131_071 => sub += 1,
                    131_072..=33_554_431 => l0 += 1,
                    33_554_432..=8_589_934_591 => l1 += 1,
                    _ => over += 1,
                }
            }
        }
        assert!(sub > 0 && l0 > 0 && l1 > 0 && over > 0);
    }
}
