//! System-level experiments: the figures and tables of the paper.

use std::fmt;

use hostsite::db::Database;
use hostsite::HostComputer;
use mcommerce_core::apps::{all_apps, for_category};
use mcommerce_core::requirements::{check_all, RequirementReport};
use mcommerce_core::workload::run_workload;
use mcommerce_core::{
    Category, CommerceSystem, EcSystem, FleetRunner, MiddlewareKind, Scenario, SystemSpec,
    WiredPath, WirelessConfig, WorkloadSummary,
};
use middleware::MobileRequest;
use simnet::rng::rng_for;
use station::DeviceProfile;
use wireless::{CellularStandard, WlanStandard};

fn wifi(distance_m: f64) -> WirelessConfig {
    WirelessConfig::Wlan {
        standard: WlanStandard::Dot11b,
        distance_m,
    }
}

// ---------------------------------------------------------------------
// F1 / F2 — Figures 1 and 2
// ---------------------------------------------------------------------

/// One system's mean per-component latency profile.
#[derive(Debug, Clone)]
pub struct SystemProfile {
    /// System label.
    pub label: String,
    /// Transactions run.
    pub transactions: usize,
    /// Mean total latency, seconds.
    pub total_secs: f64,
    /// Mean per-component shares (component → fraction of latency).
    pub shares: Vec<(String, f64)>,
}

impl fmt::Display for SystemProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<40} {:>8.1} ms |", self.label, self.total_secs * 1e3)?;
        for (name, share) in &self.shares {
            write!(f, " {name} {:>4.1}%", share * 100.0)?;
        }
        Ok(())
    }
}

/// Figures 1 and 2: the same Commerce workload through the EC system
/// (four components) and the MC system (six components). The MC profile
/// must show the two extra components carrying real latency.
pub fn fig1_fig2(transactions: u64) -> (SystemProfile, SystemProfile) {
    let profile = |label: String, summary: &WorkloadSummary| SystemProfile {
        label,
        transactions: summary.attempted,
        total_secs: summary.latency_mean,
        shares: summary
            .component_shares
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
    };

    // EC baseline (Figure 1): same application, none of the mobile
    // components. The fleet engine only builds MC systems, so the
    // four-component baseline is assembled directly.
    let app = for_category(Category::Commerce);
    let mut host = HostComputer::new(Database::new(), 1);
    app.install(&mut host);
    let mut ec = EcSystem::new(host, WiredPath::wan());
    let ec_summary = run_workload(&mut ec, app.as_ref(), transactions, 5);

    // MC (Figure 2): the same workload as a fleet of single-session users.
    let scenario = Scenario::new("Figure 2")
        .app(Category::Commerce)
        .users(transactions)
        .seed(7);
    let mc = FleetRunner::new(scenario).run().report;

    (
        profile("EC (Figure 1: 4 components)".into(), &ec_summary),
        profile("MC (Figure 2: 6 components)".into(), &mc.summary.workload),
    )
}

// ---------------------------------------------------------------------
// T1 — Table 1
// ---------------------------------------------------------------------

/// One Table 1 row, measured.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Category name (Table 1 column 1).
    pub category: String,
    /// Major applications (Table 1 column 2).
    pub major_applications: String,
    /// Clients (Table 1 column 3).
    pub clients: String,
    /// Success rate over the workload.
    pub success_rate: f64,
    /// Mean step latency, seconds.
    pub latency_secs: f64,
    /// Mean bytes over the air per step.
    pub air_bytes: f64,
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<36} {:>5.0}% {:>9.1} ms {:>8.0} B | {}",
            self.category,
            self.success_rate * 100.0,
            self.latency_secs * 1e3,
            self.air_bytes,
            self.clients
        )
    }
}

/// Table 1: every application category run on one MC system.
pub fn table1(sessions: u64) -> Vec<Table1Row> {
    let apps = all_apps();
    let mut host = HostComputer::new(Database::new(), 31);
    for app in &apps {
        app.install(&mut host);
    }
    let mut system = SystemSpec::new()
        .middleware(MiddlewareKind::Wap)
        .device(DeviceProfile::ipaq_h3870())
        .wireless(wifi(25.0))
        .wired(WiredPath::wan())
        .seed(32)
        .build(host);
    apps.iter()
        .map(|app| {
            let summary = run_workload(&mut system, app.as_ref(), sessions, 33);
            Table1Row {
                category: app.category().name().to_owned(),
                major_applications: app.category().major_applications().to_owned(),
                clients: app.category().clients().to_owned(),
                success_rate: summary.success_rate(),
                latency_secs: summary.latency_mean,
                air_bytes: summary.air_bytes_mean,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// T2 — Table 2
// ---------------------------------------------------------------------

/// One Table 2 row, measured.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Device name.
    pub device: String,
    /// Operating system.
    pub os: String,
    /// Processor description.
    pub processor: String,
    /// RAM/ROM as printed in the paper.
    pub ram_rom: String,
    /// Mean transaction latency, seconds (device CPU included).
    pub latency_secs: f64,
    /// Mean station-CPU share of latency.
    pub station_share: f64,
    /// Mean energy per transaction, joules.
    pub energy_j: f64,
    /// Content budget in bytes (drives which decks load at all).
    pub content_budget: usize,
}

impl fmt::Display for Table2Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} {:<14} {:>9.1} ms {:>6.1}% cpu {:>8.2} mJ {:>7} B budget",
            self.device,
            self.os,
            self.latency_secs * 1e3,
            self.station_share * 100.0,
            self.energy_j * 1e3,
            self.content_budget
        )
    }
}

/// Table 2: the same travel-booking workload on each of the five devices.
/// Slower CPUs and heavier OSes must show up as higher latency.
pub fn table2(sessions: u64) -> Vec<Table2Row> {
    DeviceProfile::table2()
        .into_iter()
        .map(|device| {
            let scenario = Scenario::new("Table 2")
                .app(Category::Travel)
                .device(device.clone())
                .sessions_per_user(sessions)
                .seed(43);
            let summary = FleetRunner::new(scenario).run().report.summary.workload;
            Table2Row {
                device: device.name.to_owned(),
                os: device.os.to_string(),
                processor: device.processor.to_owned(),
                ram_rom: format!("{} MB/{} MB", device.ram_mb, device.rom_mb),
                latency_secs: summary.latency_mean,
                station_share: summary
                    .component_shares
                    .get("station")
                    .copied()
                    .unwrap_or(0.0),
                energy_j: summary.energy_mean_j,
                content_budget: device.content_budget_bytes(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// T3 — Table 3
// ---------------------------------------------------------------------

/// One middleware × network measurement.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Middleware name.
    pub middleware: String,
    /// Network name.
    pub network: String,
    /// Mean latency, seconds.
    pub latency_secs: f64,
    /// Mean over-the-air bytes per step.
    pub air_bytes: f64,
    /// Mean middleware-CPU share.
    pub middleware_share: f64,
    /// Mean energy, joules.
    pub energy_j: f64,
}

impl fmt::Display for Table3Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} on {:<22} {:>9.1} ms {:>8.0} B {:>6.2}% mw-cpu {:>8.2} mJ",
            self.middleware,
            self.network,
            self.latency_secs * 1e3,
            self.air_bytes,
            self.middleware_share * 100.0,
            self.energy_j * 1e3
        )
    }
}

/// Table 3: WAP vs i-mode, same content, across three wireless networks.
pub fn table3(sessions: u64) -> Vec<Table3Row> {
    let networks = [
        wifi(25.0),
        WirelessConfig::Cellular {
            standard: CellularStandard::Gprs,
        },
        WirelessConfig::Cellular {
            standard: CellularStandard::Wcdma,
        },
    ];
    let mut rows = Vec::new();
    for network in networks {
        for kind in [MiddlewareKind::Wap, MiddlewareKind::IMode] {
            // One user running the whole session budget, so the one-time
            // WSP session setup amortises across the workload exactly as
            // it would for a real returning customer.
            let scenario = Scenario::new("Table 3")
                .app(Category::Commerce)
                .middleware(kind)
                .device(DeviceProfile::nokia_9290())
                .wireless(network)
                .sessions_per_user(sessions)
                .seed(53);
            let summary = FleetRunner::new(scenario).run().report.summary.workload;
            rows.push(Table3Row {
                middleware: kind.name().to_owned(),
                network: network.name(),
                latency_secs: summary.latency_mean,
                air_bytes: summary.air_bytes_mean,
                middleware_share: summary
                    .component_shares
                    .get("middleware")
                    .copied()
                    .unwrap_or(0.0),
                energy_j: summary.energy_mean_j,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// T4 — Table 4
// ---------------------------------------------------------------------

/// Goodput of one WLAN standard at one distance.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Standard name.
    pub standard: String,
    /// Nominal maximum rate (the Table 4 figure), bps.
    pub nominal_bps: u64,
    /// Distance in metres.
    pub distance_m: f64,
    /// Measured goodput, bps (0 = out of range).
    pub goodput_bps: f64,
    /// Link-layer retransmissions per transfer.
    pub retransmissions: u32,
}

impl fmt::Display for Table4Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<18} @ {:>5.0} m: {:>8.2} Mbps goodput (nominal {:>2} Mbps), {} retx",
            self.standard,
            self.distance_m,
            self.goodput_bps / 1e6,
            self.nominal_bps / 1_000_000,
            self.retransmissions
        )
    }
}

/// Table 4: bulk transfer over each WLAN standard at a sweep of
/// distances; goodput follows the standard's rate tiers and dies at the
/// range edge.
pub fn table4(bytes_per_transfer: usize) -> Vec<Table4Row> {
    let distances = [1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 100.0, 150.0, 200.0, 300.0];
    let mut rows = Vec::new();
    for standard in WlanStandard::ALL {
        for &distance_m in &distances {
            let config = WirelessConfig::Wlan {
                standard,
                distance_m,
            };
            let (goodput, retx) = match config.air_link() {
                None => (0.0, 0),
                Some(link) => {
                    let mut rng = rng_for(61, "t4");
                    let transfer = link.transfer(bytes_per_transfer, &mut rng);
                    if transfer.failed {
                        (0.0, transfer.retransmissions)
                    } else {
                        (
                            bytes_per_transfer as f64 * 8.0 / transfer.elapsed.as_secs_f64(),
                            transfer.retransmissions,
                        )
                    }
                }
            };
            rows.push(Table4Row {
                standard: standard.name().to_owned(),
                nominal_bps: standard.max_rate_bps(),
                distance_m,
                goodput_bps: goodput,
                retransmissions: retx,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// T5 — Table 5
// ---------------------------------------------------------------------

/// One cellular standard's measured behaviour.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Standard name.
    pub standard: String,
    /// Generation label.
    pub generation: String,
    /// Switching technique.
    pub switching: String,
    /// Whether mobile commerce is feasible at all (1G analog is not).
    pub feasible: bool,
    /// First-transaction latency (includes session setup), seconds.
    pub first_txn_secs: f64,
    /// Steady-state transaction latency, seconds.
    pub steady_txn_secs: f64,
}

impl fmt::Display for Table5Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.feasible {
            write!(
                f,
                "{:<16} {:<5} {:<16} first {:>8.2} s, steady {:>7.3} s",
                self.standard,
                self.generation,
                self.switching,
                self.first_txn_secs,
                self.steady_txn_secs
            )
        } else {
            write!(
                f,
                "{:<16} {:<5} {:<16} no data service — infeasible for MC",
                self.standard, self.generation, self.switching
            )
        }
    }
}

/// Table 5: the same payment transaction on every cellular generation.
pub fn table5() -> Vec<Table5Row> {
    CellularStandard::ALL
        .iter()
        .map(|&standard| {
            let config = WirelessConfig::Cellular { standard };
            let feasible = config.air_link().is_some();
            let (first, steady) = if feasible {
                // Table 5 needs individual transactions, not aggregates,
                // so it takes a single provisioned system from the same
                // Scenario description the fleet engine uses.
                let scenario = Scenario::new("Table 5")
                    .app(Category::Commerce)
                    .device(DeviceProfile::nokia_9290())
                    .wireless(config)
                    .seed(72);
                let mut system = scenario.system_for_user(0);
                let first = system.execute(&MobileRequest::get("/shop"));
                let mut steady = Vec::new();
                for _ in 0..10 {
                    steady.push(system.execute(&MobileRequest::get("/shop")).total);
                }
                (
                    first.total,
                    steady.iter().sum::<f64>() / steady.len() as f64,
                )
            } else {
                (0.0, 0.0)
            };
            Table5Row {
                standard: standard.name().to_owned(),
                generation: standard.generation().to_string(),
                switching: standard.switching().to_string(),
                feasible,
                first_txn_secs: first,
                steady_txn_secs: steady,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// F3 — fleet scale
// ---------------------------------------------------------------------

/// Throughput of the fleet engine at one (users, threads) point.
#[derive(Debug, Clone)]
pub struct FleetScaleRow {
    /// Simulated users in the fleet.
    pub users: u64,
    /// OS threads the fleet was sharded across (after clamping).
    pub threads: usize,
    /// Transactions executed across the fleet.
    pub transactions: u64,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Transactions simulated per wall-clock second.
    pub tps: f64,
}

impl fmt::Display for FleetScaleRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>6} users × {:>2} thread(s): {:>7} txns in {:>8.3} s = {:>10.0} txns/s",
            self.users, self.threads, self.transactions, self.wall_secs, self.tps
        )
    }
}

/// Fleet scale: the same Commerce scenario swept across fleet sizes and
/// shard counts. The merged [`mcommerce_core::FleetSummary`] is bit-for-bit
/// identical at every thread count (the fleet engine's determinism
/// contract — asserted here on every sweep point); only the wall clock
/// changes with parallelism.
pub fn fleet_scale(users_sweep: &[u64], threads_sweep: &[usize]) -> Vec<FleetScaleRow> {
    let mut rows = Vec::new();
    for &users in users_sweep {
        let scenario = Scenario::new("F3")
            .app(Category::Commerce)
            .users(users)
            .seed(97);
        let mut reference = None;
        for &threads in threads_sweep {
            if threads as u64 > users && threads > 1 {
                continue; // would clamp to a duplicate of an earlier row
            }
            let report = FleetRunner::new(scenario.clone()).threads(threads).run().report;
            let summary = report.summary.clone();
            if let Some(reference) = &reference {
                assert_eq!(
                    reference, &summary,
                    "fleet merge must not depend on thread count"
                );
            } else {
                reference = Some(summary);
            }
            rows.push(FleetScaleRow {
                users,
                threads: report.threads,
                transactions: report.summary.transactions(),
                wall_secs: report.wall_secs,
                tps: report.throughput_tps(),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// X2 — §1.1 requirements
// ---------------------------------------------------------------------

/// The five requirement checks of §1.1, executed.
pub fn independence() -> Vec<RequirementReport> {
    check_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_fig2_shapes_hold() {
        let (ec, mc) = fig1_fig2(40);
        // MC costs more than EC…
        assert!(mc.total_secs > ec.total_secs);
        // …and the two added components genuinely contribute in MC…
        let share = |p: &SystemProfile, name: &str| {
            p.shares
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        assert!(share(&mc, "wireless") > 0.0);
        assert!(share(&mc, "middleware") > 0.0);
        // …while EC has neither.
        assert_eq!(share(&ec, "wireless"), 0.0);
        assert_eq!(share(&ec, "middleware"), 0.0);
    }

    #[test]
    fn table1_all_categories_succeed() {
        let rows = table1(3);
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(
                row.success_rate > 0.95,
                "{}: {}",
                row.category,
                row.success_rate
            );
            assert!(row.latency_secs > 0.0);
        }
    }

    #[test]
    fn table2_slower_devices_are_slower() {
        let rows = table2(4);
        assert_eq!(rows.len(), 5);
        let get = |name: &str| rows.iter().find(|r| r.device.contains(name)).unwrap();
        let palm = get("Palm i705");
        let toshiba = get("Toshiba");
        // 33 MHz Dragonball vs 400 MHz PXA250.
        assert!(palm.latency_secs > toshiba.latency_secs);
        assert!(palm.station_share > toshiba.station_share);
        assert!(palm.content_budget < toshiba.content_budget);
    }

    #[test]
    fn table3_tradeoff_holds_on_slow_links() {
        let rows = table3(4);
        let find = |mw: &str, net: &str| {
            rows.iter()
                .find(|r| r.middleware == mw && r.network.contains(net))
                .unwrap()
        };
        // WAP ships fewer bytes over the air than i-mode everywhere.
        for net in ["802.11b", "GPRS", "WCDMA"] {
            assert!(
                find("WAP", net).air_bytes < find("i-mode", net).air_bytes,
                "{net}"
            );
        }
        // On GPRS (slow), fewer air bytes keep WAP competitive despite
        // its one-time WSP session setup (amortised over the workload).
        let wap = find("WAP", "GPRS");
        let imode = find("i-mode", "GPRS");
        assert!(
            wap.latency_secs <= imode.latency_secs * 1.25,
            "wap {} vs imode {}",
            wap.latency_secs,
            imode.latency_secs
        );
        // And WAP's translation CPU share is the visibly larger one.
        assert!(wap.middleware_share > imode.middleware_share);
    }

    #[test]
    fn table4_ordering_and_range_cliffs() {
        let rows = table4(100_000);
        let goodput = |std: &str, d: f64| {
            rows.iter()
                .find(|r| r.standard.contains(std) && r.distance_m == d)
                .unwrap()
                .goodput_bps
        };
        // Close in, the Table 4 rate ordering holds.
        assert!(goodput("Bluetooth", 5.0) < goodput("802.11b", 5.0));
        assert!(goodput("802.11b", 5.0) < goodput("802.11a", 5.0));
        // Range cliffs: Bluetooth dies beyond 10 m, 802.11b beyond 100 m,
        // HyperLAN2 still alive at 300 m.
        assert_eq!(goodput("Bluetooth", 25.0), 0.0);
        assert_eq!(goodput("802.11b", 150.0), 0.0);
        assert!(goodput("HyperLAN2", 300.0) > 0.0);
        // Rate degrades with distance within coverage.
        assert!(goodput("802.11g", 150.0) < goodput("802.11g", 10.0));
    }

    #[test]
    fn fleet_scale_merges_identically_and_speeds_up_with_cores() {
        let rows = fleet_scale(&[64], &[1, 2, 4]);
        assert_eq!(rows.len(), 3);
        // Same fleet at every thread count (determinism is asserted
        // inside fleet_scale itself): same transaction total.
        for row in &rows {
            assert_eq!(row.transactions, 128); // 64 users × 2-step session
            assert!(row.tps > 0.0);
        }
        // Speedup is machine-dependent; only demand the >2× win at 4
        // threads when the host actually has 4 cores to give.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 4 {
            let tps = |t: usize| rows.iter().find(|r| r.threads == t).unwrap().tps;
            assert!(
                tps(4) > tps(1) * 2.0,
                "4 threads {} vs 1 thread {}",
                tps(4),
                tps(1)
            );
        }
    }

    #[test]
    fn table5_generations_behave() {
        let rows = table5();
        assert_eq!(rows.len(), 9);
        let find = |name: &str| rows.iter().find(|r| r.standard.contains(name)).unwrap();
        // 1G analog: infeasible.
        assert!(!find("AMPS").feasible);
        assert!(!find("TACS").feasible);
        // Circuit-switched 2G pays multi-second setup on first contact.
        let gsm = find("GSM");
        assert!(gsm.first_txn_secs > gsm.steady_txn_secs + 4.0);
        // Packet 2.5G does not.
        let gprs = find("GPRS");
        assert!(gprs.first_txn_secs < gprs.steady_txn_secs + 1.5);
        // Steady-state latency improves with generation.
        assert!(find("WCDMA").steady_txn_secs < find("GPRS").steady_txn_secs);
        assert!(find("GPRS").steady_txn_secs < find("GSM").steady_txn_secs);
    }
}
