//! F12 — full-text catalog search: cold vs memoized latency, index
//! scaling, write-rate sensitivity, and the index-equals-scan gate.
//!
//! DESIGN.md §2.19 adds a host-side inverted index over the commerce
//! catalog and routes the seventh workload — browse → search → refine →
//! purchase — through it. This experiment prices that path:
//!
//! 1. **Cold vs warm fleet.** The search-heavy commerce workload runs
//!    once with every cache disabled and once under the standard cache
//!    policy (whose TTL covers a session). Search responses are
//!    `no_store`, so the HTTP tiers never answer for them — the warm
//!    win comes from the DB-level search memo serving the in-session
//!    repeat query. CI gates warm p50 strictly below cold.
//! 2. **Index-size axis.** An engine micro-leg searches catalogs of
//!    16/64/256 rows and drains the simulated search cost: postings
//!    visited grow with the catalog, so the modelled cost must be
//!    strictly monotone in rows.
//! 3. **Write-rate axis.** 100 identical queries interleaved with 0, 10
//!    and 50 catalog writes: each write invalidates the memoized result
//!    for the table, so the memo hit count must fall as the write rate
//!    rises.
//! 4. **Index = scan.** The query battery over an edited catalog,
//!    indexed search compared row-for-row against the brute-force
//!    projection.
//! 5. **Thread identity.** The search-heavy fleet, caches on, merged on
//!    1/2/4/8 shards — byte-identical summaries or the bool trips.
//! 6. **Interner flatness.** Ten thousand distinct search queries
//!    against a page-cached server must intern zero keys: the
//!    high-cardinality-key regression this PR's bugfix sweep fixed.
//!
//! Results are written as the `BENCH_search.json` artefact.

use std::fmt;

use hostsite::db::Database;
use hostsite::{HttpRequest, HttpResponse, WebServer};
use mcommerce_core::{CachePolicy, Category, CommerceSystem, FleetRunner, Scenario, WorkloadCounters};

/// Fixed seed for every F12 population.
const F12_SEED: u64 = 1201;

/// Search-heavy sessions each user runs.
const SESSIONS: u64 = 4;

/// The catalog-size axis of the index micro-leg.
const CATALOG_ROWS: [i64; 3] = [16, 64, 256];

/// The write-rate axis: catalog writes interleaved per 100 queries.
const WRITE_RATES: [u32; 3] = [0, 10, 50];

/// One fleet leg of the cold/warm comparison.
#[derive(Debug, Clone)]
pub struct LatencyLeg {
    /// Leg label: `cold` (caches off) or `warm` (standard policy).
    pub leg: &'static str,
    /// p50 transaction latency across the fleet, milliseconds.
    pub p50_ms: f64,
    /// p99 transaction latency across the fleet, milliseconds.
    pub p99_ms: f64,
    /// Total simulated search CPU charged to hosts, milliseconds.
    pub search_ms: f64,
    /// DB search-memo hits across the fleet.
    pub memo_hits: u64,
}

impl fmt::Display for LatencyLeg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<4}: p50 {:>7.1} ms p99 {:>7.1} ms | {:>8.2} ms searching, {} memo hits",
            self.leg, self.p50_ms, self.p99_ms, self.search_ms, self.memo_hits
        )
    }
}

/// One row of the index-size axis.
#[derive(Debug, Clone)]
pub struct IndexSizeRow {
    /// Catalog rows indexed.
    pub rows: i64,
    /// Simulated cost of one cold two-term search, nanoseconds.
    pub cold_search_ns: u64,
}

/// One row of the write-rate axis.
#[derive(Debug, Clone)]
pub struct WriteRateRow {
    /// Catalog writes interleaved per 100 queries.
    pub writes_per_100_queries: u32,
    /// Search-memo hits over those 100 queries.
    pub memo_hits: u64,
    /// Search-memo misses (cold executions) over those 100 queries.
    pub memo_misses: u64,
}

/// The complete F12 result set.
#[derive(Debug, Clone)]
pub struct SearchNumbers {
    /// Searching users per fleet leg.
    pub users: u64,
    /// Search-heavy sessions per user.
    pub sessions_per_user: u64,
    /// The cold/warm fleet comparison.
    pub latency: Vec<LatencyLeg>,
    /// The catalog-size axis.
    pub index_size: Vec<IndexSizeRow>,
    /// The write-rate axis.
    pub write_rate: Vec<WriteRateRow>,
    /// Whether indexed search matched the brute-force scan row for row
    /// across the whole query battery.
    pub search_equals_scan: bool,
    /// Whether the search-heavy fleet merged byte-identically on
    /// 1/2/4/8 shards.
    pub thread_identical: bool,
    /// Whether 10k distinct search queries left the page-cache
    /// interner empty (the high-cardinality-key regression gate).
    pub interner_flat: bool,
}

impl fmt::Display for SearchNumbers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "search fleet: {} users × {} search-heavy sessions, seed {}",
            self.users, self.sessions_per_user, F12_SEED
        )?;
        for leg in &self.latency {
            writeln!(f, "  {leg}")?;
        }
        writeln!(f, "cold search cost by catalog size:")?;
        for row in &self.index_size {
            writeln!(
                f,
                "  {:>4} rows: {:>9} ns per two-term search",
                row.rows, row.cold_search_ns
            )?;
        }
        writeln!(f, "memo hit rate under interleaved writes (100 queries):")?;
        for row in &self.write_rate {
            writeln!(
                f,
                "  {:>2} writes: {:>3} hits / {:>3} misses",
                row.writes_per_100_queries, row.memo_hits, row.memo_misses
            )?;
        }
        writeln!(f, "indexed search equals brute-force scan: {}", self.search_equals_scan)?;
        writeln!(
            f,
            "search fleet identical across 1/2/4/8 threads: {}",
            self.thread_identical
        )?;
        write!(
            f,
            "interner flat under 10k distinct queries: {}",
            self.interner_flat
        )
    }
}

impl SearchNumbers {
    /// Renders the result as the `BENCH_search.json` document.
    pub fn to_json(&self) -> String {
        let latency: Vec<String> = self
            .latency
            .iter()
            .map(|l| {
                format!(
                    "    {{ \"leg\": \"{}\", \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"search_ms\": {:.4}, \"memo_hits\": {} }}",
                    l.leg, l.p50_ms, l.p99_ms, l.search_ms, l.memo_hits
                )
            })
            .collect();
        let index_size: Vec<String> = self
            .index_size
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"rows\": {}, \"cold_search_ns\": {} }}",
                    r.rows, r.cold_search_ns
                )
            })
            .collect();
        let write_rate: Vec<String> = self
            .write_rate
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"writes_per_100_queries\": {}, \"memo_hits\": {}, \"memo_misses\": {} }}",
                    r.writes_per_100_queries, r.memo_hits, r.memo_misses
                )
            })
            .collect();
        format!(
            "{{\n  \"experiment\": \"F12_search\",\n  \"users\": {},\n  \"sessions_per_user\": {},\n  \"latency\": [\n{}\n  ],\n  \"index_size\": [\n{}\n  ],\n  \"write_rate\": [\n{}\n  ],\n  \"search_equals_scan\": {},\n  \"thread_identical\": {},\n  \"interner_flat\": {}\n}}\n",
            self.users,
            self.sessions_per_user,
            latency.join(",\n"),
            index_size.join(",\n"),
            write_rate.join(",\n"),
            self.search_equals_scan,
            self.thread_identical,
            self.interner_flat
        )
    }
}

/// Runs the search-heavy workload for one leg under `policy`,
/// recording **only the search steps** into the counters — the
/// percentiles compare search latency, not the whole session mix. All
/// steps still execute (browsing warms the page caches, buying commits
/// the purchase); the leg's metrics carry the simulated search CPU
/// (`host.db.search_ns`) and memo traffic (`host.db_cache.search_*`).
fn search_cell(policy: CachePolicy, users: u64) -> (WorkloadCounters, obs::Metrics) {
    let scenario = Scenario::new("F12")
        .app(Category::Commerce)
        .search_heavy(true)
        .sessions_per_user(SESSIONS)
        .seed(F12_SEED)
        .cache(policy);
    let app = mcommerce_core::apps::for_category(Category::Commerce);
    let guard = obs::metrics::enable();
    let mut counters = WorkloadCounters::default();
    for user in 0..users {
        let mut system = scenario.system_for_user(user);
        let session_seed = simnet::rng::sub_seed(F12_SEED, "fleet.session", user);
        for session in 0..SESSIONS {
            for step in app.search_session(session_seed, session) {
                let report = system.execute(&step.req);
                assert!(report.success, "{:?}", report.failure);
                if step.req.url.starts_with("/shop/search") {
                    counters.record(&report);
                }
            }
        }
    }
    drop(guard);
    (counters, obs::metrics::take())
}

/// A catalog of `rows` products whose names cycle through a fixed
/// vocabulary, full-text indexed on `name`.
fn indexed_catalog(rows: i64) -> Database {
    const ADJECTIVES: [&str; 4] = ["wireless", "leather", "spare", "travel"];
    const NOUNS: [&str; 4] = ["earpiece", "case", "stylus", "charger"];
    let mut db = Database::new();
    db.create_table("products", &["sku", "name", "price"], &["name"])
        .unwrap();
    for sku in 0..rows {
        let name = format!(
            "{} {}",
            ADJECTIVES[(sku % 4) as usize],
            NOUNS[((sku / 4) % 4) as usize]
        );
        db.insert("products", vec![sku.into(), name.into(), 100i64.into()])
            .unwrap();
    }
    db.create_fts("products", "name").unwrap();
    db
}

/// Simulated cost of one cold two-term search over a `rows`-row
/// catalog: the vocabulary cycles, so postings visited — and therefore
/// the drained cost — grow linearly with the catalog.
fn cold_search_ns(rows: i64) -> u64 {
    let mut db = indexed_catalog(rows);
    db.search("products", "wireless earpiece").unwrap();
    db.drain_search_cost_ns()
}

/// Memo behaviour under write pressure: 100 identical queries with
/// `writes` fresh catalog inserts spread evenly between them. Every
/// insert invalidates the memoized result, forcing the next query cold.
fn memo_under_writes(writes: u32) -> (u64, u64) {
    let mut db = indexed_catalog(64);
    db.set_query_cache(true);
    let guard = obs::metrics::enable();
    let mut next_sku = 10_000i64;
    for i in 0..100u32 {
        db.search("products", "wireless").unwrap();
        if writes > 0 && (i + 1) % (100 / writes) == 0 {
            db.insert(
                "products",
                vec![next_sku.into(), "filler item".into(), 1i64.into()],
            )
            .unwrap();
            next_sku += 1;
        }
    }
    drop(guard);
    let metrics = obs::metrics::take();
    (
        metrics.counter("host.db_cache.search_hits"),
        metrics.counter("host.db_cache.search_misses"),
    )
}

/// The index-equals-scan battery over an edited catalog.
fn search_equals_scan() -> bool {
    let mut db = indexed_catalog(64);
    // Edit history: deletes and updates so the incremental postings
    // have seen removals, not just the initial build.
    for sku in [3i64, 17, 40] {
        db.delete("products", &sku.into()).unwrap();
    }
    for sku in [5i64, 21] {
        db.update(
            "products",
            vec![sku.into(), "renamed travel kit".into(), 90i64.into()],
        )
        .unwrap();
    }
    let queries = [
        "wireless",
        "earpiece",
        "travel kit",
        "wireless earpiece",
        "leather case",
        "renamed",
        "unobtainium",
        "",
    ];
    queries.iter().all(|q| {
        let indexed = db.search("products", q).unwrap();
        let scanned = db.search_scan("products", "name", q).unwrap();
        indexed.len() == scanned.len() && indexed.iter().zip(scanned.iter()).all(|(a, b)| a == b)
    })
}

/// Ten thousand distinct search queries against a page-cached server:
/// `no_store` responses bypass admission and lookups only *probe*, so
/// the interner must stay empty.
fn interner_flat() -> bool {
    let mut server = WebServer::new(Database::new(), F12_SEED);
    server.route_get(
        "/search",
        |req: &HttpRequest, _ctx: &mut hostsite::ServerCtx<'_>| {
            let q = req.param("q").unwrap_or_default();
            HttpResponse::ok(format!("<html><body>results for {q}</body></html>")).with_no_store()
        },
    );
    server.configure_page_cache(30_000_000_000, 256 * 1024);
    for i in 0..10_000u64 {
        let (_, hit) = server.handle_cached(HttpRequest::get(&format!("/search?q=term{i}")));
        if hit {
            return false;
        }
    }
    server.page_cache_interned_keys() == 0 && server.page_cache_len() == 0
}

/// Runs the full F12 experiment. `quick` shrinks the populations for CI
/// smoke runs; seeds and both micro-axes are identical either way.
pub fn run(quick: bool) -> SearchNumbers {
    let users = if quick { 6 } else { 16 };

    let mut latency = Vec::new();
    for (leg, policy) in [
        ("cold", CachePolicy::disabled()),
        ("warm", CachePolicy::standard()),
    ] {
        let (counters, metrics) = search_cell(policy, users);
        latency.push(LatencyLeg {
            leg,
            p50_ms: counters.latency_percentile(50.0) * 1e3,
            p99_ms: counters.latency_percentile(99.0) * 1e3,
            search_ms: metrics.counter("host.db.search_ns") as f64 / 1e6,
            memo_hits: metrics.counter("host.db_cache.search_hits"),
        });
    }

    let index_size = CATALOG_ROWS
        .iter()
        .map(|&rows| IndexSizeRow {
            rows,
            cold_search_ns: cold_search_ns(rows),
        })
        .collect();

    let write_rate = WRITE_RATES
        .iter()
        .map(|&writes| {
            let (memo_hits, memo_misses) = memo_under_writes(writes);
            WriteRateRow {
                writes_per_100_queries: writes,
                memo_hits,
                memo_misses,
            }
        })
        .collect();

    // Thread identity, caches on: the high-cardinality query key space
    // must not cost a single bit of shard invariance.
    let identity = Scenario::new("F12-identity")
        .app(Category::Commerce)
        .search_heavy(true)
        .users(if quick { 8 } else { 16 })
        .sessions_per_user(2)
        .cache(CachePolicy::standard())
        .seed(F12_SEED + 1);
    let base = FleetRunner::new(identity.clone()).threads(1).run().report.summary;
    let thread_identical = [2, 4, 8].iter().all(|&threads| {
        FleetRunner::new(identity.clone())
            .threads(threads)
            .run()
            .report
            .summary
            == base
    });

    SearchNumbers {
        users,
        sessions_per_user: SESSIONS,
        latency,
        index_size,
        write_rate,
        search_equals_scan: search_equals_scan(),
        thread_identical,
        interner_flat: interner_flat(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_pays_cold_and_saves_warm() {
        let numbers = run(true);
        let cold = &numbers.latency[0];
        let warm = &numbers.latency[1];
        assert!(
            warm.p50_ms < cold.p50_ms,
            "memoized repeat queries must pull p50 down: {warm} vs {cold}"
        );
        assert!(
            warm.search_ms < cold.search_ms,
            "memo hits cost less simulated CPU: {warm} vs {cold}"
        );
        assert_eq!(cold.memo_hits, 0, "caches off ⇒ no memo");
        assert!(warm.memo_hits > 0, "each session repeats its query");

        // Cost is strictly monotone in catalog size.
        for pair in numbers.index_size.windows(2) {
            assert!(
                pair[1].cold_search_ns > pair[0].cold_search_ns,
                "{} rows vs {} rows",
                pair[1].rows,
                pair[0].rows
            );
        }
        // Memo hits fall as the write rate rises; every leg ran 100
        // queries.
        for row in &numbers.write_rate {
            assert_eq!(row.memo_hits + row.memo_misses, 100, "{row:?}");
        }
        for pair in numbers.write_rate.windows(2) {
            assert!(
                pair[1].memo_hits < pair[0].memo_hits,
                "{:?} vs {:?}",
                pair[1],
                pair[0]
            );
        }

        assert!(numbers.search_equals_scan);
        assert!(numbers.thread_identical);
        assert!(numbers.interner_flat);
        let json = numbers.to_json();
        assert!(json.contains("\"search_equals_scan\": true"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn the_legs_are_deterministic() {
        let (a, am) = search_cell(CachePolicy::standard(), 3);
        let (b, bm) = search_cell(CachePolicy::standard(), 3);
        assert_eq!(a, b, "same seed, same numbers");
        assert_eq!(
            am.counter("host.db.search_ns"),
            bm.counter("host.db.search_ns")
        );
        assert_eq!(a.attempted, 3 * SESSIONS * 5, "five search steps per session");
    }
}
