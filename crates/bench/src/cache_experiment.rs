//! F7 — the caching hierarchy: cold vs warm latency under TTL ×
//! revisit-locality, plus the zero-TTL identity gate.
//!
//! DESIGN.md §2.14 adds three deterministic caches to the stack: the
//! gateway content cache (middleware), the page cache (host web server)
//! and the query cache (host database). This experiment prices what
//! they buy and proves what they must not change:
//!
//! 1. **TTL × locality sweep.** A browse workload (one user re-fetching
//!    the shop page with think time between visits) runs cold (caches
//!    disabled) and warm (TTL sweep). The first transaction of every
//!    user — session setup plus the compulsory cold fill — is excluded
//!    from the percentile accounting, so the p50/p99 columns compare
//!    steady-state revisits. CI gates on warm p50 *and* p99 strictly
//!    below cold whenever the TTL outlives the revisit interval.
//! 2. **Zero-TTL identity.** A fleet carrying `enabled` but zero TTLs
//!    (the query cache runs, but it is sim-time transparent) is
//!    asserted byte-identical to a cache-free fleet at a different
//!    thread count.
//! 3. **Counter visibility.** Dedicated legs light each layer's
//!    hit counters: the gateway cache on the browse sweep, the page
//!    cache with the gateway TTL zeroed, and the query cache on a
//!    healthcare record poll (reads only — no write invalidation).
//! 4. **`Arc<Row>` read path.** A wall-clock micro-measurement of
//!    `Database::get` over chunky rows — the hot path that used to
//!    deep-clone every row on read.
//!
//! Results are written as the `BENCH_cache.json` artefact.

use std::fmt;
use std::time::Instant;

use hostsite::db::Database;
use mcommerce_core::apps::healthcare::CLINICIAN;
use mcommerce_core::{CachePolicy, Category, CommerceSystem, FleetRunner, Scenario, WorkloadCounters};
use middleware::MobileRequest;
use simnet::SimDuration;

/// Fixed seed for every F7 population.
const F7_SEED: u64 = 701;

/// GETs each browsing user issues (the first is the excluded cold fill).
const BROWSE_GETS: u64 = 12;

/// One cell of the TTL × think-time sweep, with the matching cold
/// (cache-free) percentiles alongside.
#[derive(Debug, Clone)]
pub struct CacheSweepRow {
    /// Cache TTL at both layers, seconds of sim time.
    pub ttl_s: f64,
    /// Think time between revisits, seconds of sim time.
    pub think_s: f64,
    /// Warm p50 over steady-state revisits, milliseconds.
    pub p50_ms: f64,
    /// Warm p99 over steady-state revisits, milliseconds.
    pub p99_ms: f64,
    /// Cold p50 over the same revisits with caches disabled.
    pub cold_p50_ms: f64,
    /// Cold p99 with caches disabled.
    pub cold_p99_ms: f64,
    /// Gateway content-cache hits across the cell.
    pub gateway_hits: u64,
}

impl fmt::Display for CacheSweepRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ttl {:>5.0} s, revisit every {:>4.0} s: warm p50 {:>7.1} ms p99 {:>7.1} ms | cold p50 {:>7.1} ms p99 {:>7.1} ms | {} gateway hits",
            self.ttl_s,
            self.think_s,
            self.p50_ms,
            self.p99_ms,
            self.cold_p50_ms,
            self.cold_p99_ms,
            self.gateway_hits,
        )
    }
}

/// The complete F7 result set.
#[derive(Debug, Clone)]
pub struct CacheNumbers {
    /// Browsing users per sweep cell.
    pub users: u64,
    /// GETs each user issues (first excluded as the cold fill).
    pub gets_per_user: u64,
    /// The TTL × locality sweep.
    pub sweep: Vec<CacheSweepRow>,
    /// Whether the zero-TTL fleet came out byte-identical to the
    /// cache-free fleet at a different thread count.
    pub zero_ttl_identical: bool,
    /// Page-cache hits with the gateway cache disabled.
    pub page_hits: u64,
    /// Query-cache hits on the read-only healthcare poll.
    pub db_hits: u64,
    /// Wall-clock nanoseconds per `Database::get` over chunky rows
    /// (machine-dependent; the `Arc<Row>` read path).
    pub db_get_ns: f64,
}

impl fmt::Display for CacheNumbers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "browse fleet: {} users × {} GETs (first GET excluded as cold fill), seed {}",
            self.users, self.gets_per_user, F7_SEED
        )?;
        for row in &self.sweep {
            writeln!(f, "  {row}")?;
        }
        writeln!(
            f,
            "zero-TTL fleet identical to cache-free fleet: {}",
            self.zero_ttl_identical
        )?;
        writeln!(
            f,
            "layer counters: page cache {} hits (gateway TTL 0), query cache {} hits (read-only poll)",
            self.page_hits, self.db_hits
        )?;
        write!(
            f,
            "Database::get over 2 KB rows: {:.0} ns/op (Arc'd read path, wall clock)",
            self.db_get_ns
        )
    }
}

impl CacheNumbers {
    /// Renders the result as the `BENCH_cache.json` document.
    pub fn to_json(&self) -> String {
        let sweep: Vec<String> = self
            .sweep
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"ttl_s\": {:.1}, \"think_s\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"cold_p50_ms\": {:.4}, \"cold_p99_ms\": {:.4}, \"gateway_hits\": {} }}",
                    r.ttl_s, r.think_s, r.p50_ms, r.p99_ms, r.cold_p50_ms, r.cold_p99_ms, r.gateway_hits
                )
            })
            .collect();
        format!(
            "{{\n  \"experiment\": \"F7_cache\",\n  \"users\": {},\n  \"gets_per_user\": {},\n  \"sweep\": [\n{}\n  ],\n  \"zero_ttl_identical\": {},\n  \"counters\": {{ \"page_hits\": {}, \"db_hits\": {} }},\n  \"db_get_ns\": {:.1}\n}}\n",
            self.users,
            self.gets_per_user,
            sweep.join(",\n"),
            self.zero_ttl_identical,
            self.page_hits,
            self.db_hits,
            self.db_get_ns
        )
    }
}

/// Runs the browse workload for one sweep cell: every user re-fetches
/// the shop page `BROWSE_GETS` times with `think_secs` of idle between
/// visits. The first GET per user (session setup + compulsory cold
/// fill) is excluded from the counters, so the percentiles compare
/// steady-state revisits. Returns the counters and the cell's metrics.
fn browse_cell(
    policy: CachePolicy,
    think_secs: f64,
    users: u64,
) -> (WorkloadCounters, obs::Metrics) {
    let scenario = Scenario::new("F7").app(Category::Commerce).seed(F7_SEED);
    let guard = obs::metrics::enable();
    let mut counters = WorkloadCounters::default();
    for user in 0..users {
        let mut system = scenario.system_for_user(user);
        system.set_cache_policy(policy);
        for get in 0..BROWSE_GETS {
            if get > 0 && think_secs > 0.0 {
                system.idle(think_secs);
            }
            let report = system.execute(&MobileRequest::get("/shop"));
            if get > 0 {
                counters.record(&report);
            }
        }
    }
    drop(guard);
    (counters, obs::metrics::take())
}

/// The read-only healthcare poll: clinicians re-fetching one patient's
/// record. Only the query cache is on (both TTLs zero), every GET runs
/// `get` + `select_eq` with no intervening writes — so from the second
/// poll on, the vitals query is served from cache.
fn db_poll_hits() -> u64 {
    let scenario = Scenario::new("F7-db")
        .app(Category::HealthCare)
        .seed(F7_SEED);
    let mut system = scenario.system_for_user(0);
    system.set_cache_policy(CachePolicy {
        enabled: true,
        ..CachePolicy::disabled()
    });
    let guard = obs::metrics::enable();
    for _ in 0..6 {
        let report = system.execute(
            &MobileRequest::get("/ward/patient?id=1").with_auth(CLINICIAN.0, CLINICIAN.1),
        );
        assert!(report.success, "{:?}", report.failure);
    }
    drop(guard);
    obs::metrics::take().counter("host.db_cache.hits")
}

/// Wall-clock nanoseconds per [`Database::get`] over ~2 KB rows — the
/// hot read path that returns `Arc<Row>` instead of deep-cloning.
pub fn db_read_ns_per_op() -> f64 {
    const ROWS: i64 = 1_000;
    const PASSES: usize = 50;
    let mut db = Database::new();
    db.create_table("wide", &["id", "payload"], &[]).unwrap();
    let payload = "x".repeat(2_048);
    for id in 0..ROWS {
        db.insert("wide", vec![id.into(), payload.clone().into()])
            .unwrap();
    }
    let started = Instant::now();
    let mut touched = 0usize;
    for _ in 0..PASSES {
        for id in 0..ROWS {
            let row = db.get("wide", &id.into()).unwrap().expect("seeded");
            touched += std::hint::black_box(&row).len();
        }
    }
    let elapsed = started.elapsed().as_nanos() as f64;
    assert_eq!(touched, PASSES * ROWS as usize * 2);
    elapsed / (PASSES * ROWS as usize) as f64
}

/// Runs the full F7 experiment. `quick` shrinks the populations for CI
/// smoke runs; seeds and the sweep grid are identical either way.
pub fn run(quick: bool) -> CacheNumbers {
    let users = if quick { 8 } else { 24 };

    let mut sweep = Vec::new();
    for &think_s in &[1.0f64, 10.0] {
        let (cold, _) = browse_cell(CachePolicy::disabled(), think_s, users);
        let cold_p50_ms = cold.latency_percentile(50.0) * 1e3;
        let cold_p99_ms = cold.latency_percentile(99.0) * 1e3;
        for &ttl_s in &[5.0f64, 30.0, 120.0] {
            let policy = CachePolicy::standard().ttl(SimDuration::from_secs(ttl_s as u64));
            let (warm, metrics) = browse_cell(policy, think_s, users);
            sweep.push(CacheSweepRow {
                ttl_s,
                think_s,
                p50_ms: warm.latency_percentile(50.0) * 1e3,
                p99_ms: warm.latency_percentile(99.0) * 1e3,
                cold_p50_ms,
                cold_p99_ms,
                gateway_hits: metrics.counter("middleware.cache.hits"),
            });
        }
    }

    // Zero-TTL identity, cross-checked at different thread counts: the
    // query cache runs underneath but must not move a single bit.
    let base = Scenario::new("F7-identity")
        .app(Category::Commerce)
        .users(if quick { 8 } else { 16 })
        .sessions_per_user(2)
        .seed(F7_SEED + 1);
    let plain = FleetRunner::new(base.clone()).threads(2).run().report.summary;
    let zero_ttl = FleetRunner::new(base.cache(CachePolicy {
        enabled: true,
        ..CachePolicy::disabled()
    }))
    .threads(4)
    .run()
    .report
    .summary;
    let zero_ttl_identical = plain == zero_ttl;

    // Page-cache visibility: gateway TTL zero, so repeat GETs reach the
    // host and the page cache answers them.
    let host_only = CachePolicy {
        gateway_ttl: SimDuration::ZERO,
        ..CachePolicy::standard()
    };
    let (_, host_metrics) = browse_cell(host_only, 1.0, users.min(4));
    let page_hits = host_metrics.counter("host.page_cache.hits");

    CacheNumbers {
        users,
        gets_per_user: BROWSE_GETS,
        sweep,
        zero_ttl_identical,
        page_hits,
        db_hits: db_poll_hits(),
        db_get_ns: db_read_ns_per_op(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_revisits_beat_cold_whenever_the_ttl_outlives_the_interval() {
        let numbers = run(true);
        for row in &numbers.sweep {
            assert!(row.gateway_hits > 0 || row.ttl_s < row.think_s, "{row}");
            if row.ttl_s >= 30.0 && row.think_s <= 1.0 {
                assert!(row.p50_ms < row.cold_p50_ms, "{row}");
                assert!(row.p99_ms < row.cold_p99_ms, "{row}");
            }
        }
        assert!(numbers.zero_ttl_identical);
        assert!(numbers.page_hits > 0);
        assert!(numbers.db_hits > 0);
        assert!(numbers.db_get_ns > 0.0);
        let json = numbers.to_json();
        assert!(json.contains("\"zero_ttl_identical\": true"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn the_cold_fill_is_excluded_and_the_sweep_is_deterministic() {
        let (a, _) = browse_cell(CachePolicy::standard(), 1.0, 3);
        let (b, _) = browse_cell(CachePolicy::standard(), 1.0, 3);
        assert_eq!(a, b, "same seed, same numbers");
        assert_eq!(a.attempted, 3 * (BROWSE_GETS - 1), "first GET excluded");
        assert_eq!(a.succeeded, a.attempted);
    }
}
