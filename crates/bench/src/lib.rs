//! # bench — the experiment harness
//!
//! One function per paper artefact (see `EXPERIMENTS.md`):
//!
//! | id | paper artefact | function |
//! |----|----------------|----------|
//! | F1/F2 | Figures 1–2, EC vs MC structure | [`experiments::fig1_fig2`] |
//! | T1 | Table 1, MC applications | [`experiments::table1`] |
//! | T2 | Table 2, mobile stations | [`experiments::table2`] |
//! | T3 | Table 3, WAP vs i-mode | [`experiments::table3`] |
//! | T4 | Table 4, WLAN standards | [`experiments::table4`] |
//! | T5 | Table 5, cellular networks | [`experiments::table5`] |
//! | F3 | fleet engine scale (users × threads) | [`experiments::fleet_scale`] |
//! | F4 | event-engine throughput, wheel vs heap | [`engine::run`] |
//! | F5 | observability overhead, recorder on/off | [`obs_experiment::run`] |
//! | F6 | fault injection: availability under storms | [`faults_experiment::run`] |
//! | F7 | caching hierarchy: cold vs warm, zero-TTL identity | [`cache_experiment::run`] |
//! | F8 | shared-world contention: knee + shared-cache growth | [`contention_experiment::run`] |
//! | F9 | fleet scale: populations × threads, wall/tps/RSS | [`scale_experiment::run`] |
//! | F10 | fleet telemetry: cost when off, identity when on | [`telemetry_experiment::run`] |
//! | F11 | durable storage: group commit × fsync cost, recovery pricing | [`db_experiment::run`] |
//! | X1 | §5.2, TCP variants on wireless | [`tcpx::tcp_variants`] |
//! | X2 | §1.1, five system requirements | [`experiments::independence`] |
//!
//! `cargo run -p bench --bin report` prints every table; the Criterion
//! benches under `benches/` time the same functions. `--trace`
//! additionally exports the fixed-seed fleet trace as JSONL and Chrome
//! `trace_event` JSON (load the latter in Perfetto); `--f8 --dash`
//! prints the resource dashboard and exports Perfetto counter tracks.
//! `cargo run -p bench --bin benchdiff` diffs `BENCH_*.json` artefact
//! sets against the committed baselines in `bench/baselines/` — see
//! [`benchdiff`] for the per-metric gating policy.

pub mod ablations;
pub mod benchdiff;
pub mod cache_experiment;
pub mod contention_experiment;
pub mod db_experiment;
pub mod engine;
pub mod experiments;
pub mod faults_experiment;
pub mod obs_experiment;
pub mod scale_experiment;
pub mod search_experiment;
pub mod tcpx;
pub mod telemetry_experiment;
