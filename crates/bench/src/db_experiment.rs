//! F11 — the durable storage engine: WAL group commit × fsync cost vs
//! transaction latency, recovery-time pricing, and the zero-cost
//! identity gate.
//!
//! DESIGN.md §2.18 gives the host database a write-ahead log with group
//! commit, MVCC snapshot reads and rebuildable secondary indexes. This
//! experiment prices the durability knob and proves it free when off:
//!
//! 1. **Durability sweep.** The commerce buy workload (every session
//!    ends in a journaled two-phase purchase) runs under every
//!    `commit_batch` × `fsync_ns` cell. Each WAL sync charges one
//!    fsync-equivalent to the committing request's host time, so larger
//!    batches amortize the same durability cost over more commits —
//!    the classic group-commit trade of latency against loss window.
//! 2. **Recovery pricing.** [`db_recovery_outage_ns`] maps journal
//!    length × policy to the crash outage: a fixed remount base, a
//!    per-entry replay cost, and one fsync-equivalent per commit batch
//!    in the durable prefix. CI gates on monotonicity in length.
//! 3. **Group-commit arithmetic.** An engine-level micro-leg drives 100
//!    commits through each batch size and reads back the fsync count —
//!    `ceil(100 / batch)` by construction, pinned here.
//! 4. **Zero-cost identity.** A fleet carrying an *explicit* default
//!    policy (`batch 1, fsync 0 ns`) is asserted byte-identical to a
//!    policy-free fleet across 1/2/4/8 threads: when durability costs
//!    nothing, the engine must not move a single bit.
//! 5. **Index rebuild.** A wall-clock measurement of crash recovery
//!    over a seeded, indexed table — the derived-projection rebuild
//!    path — plus the deterministic rebuilt-entry count.
//!
//! Results are written as the `BENCH_db.json` artefact.

use std::fmt;
use std::time::Instant;

use hostsite::db::Database;
use mcommerce_core::{
    db_recovery_outage_ns, Category, DurabilityPolicy, FleetRunner, Scenario, WorkloadCounters,
};

/// Fixed seed for every F11 population.
const F11_SEED: u64 = 1101;

/// Buy sessions each user runs (one journaled purchase per session).
const SESSIONS: u64 = 8;

/// The `commit_batch` axis of the sweep.
const BATCHES: [u32; 3] = [1, 4, 16];

/// The `fsync_ns` axis of the sweep (0 = free, 0.25 ms, 1 ms).
const FSYNC_NS: [u64; 3] = [0, 250_000, 1_000_000];

/// One cell of the commit-batch × fsync-cost sweep.
#[derive(Debug, Clone)]
pub struct DurabilityRow {
    /// Commits per WAL sync window.
    pub commit_batch: u32,
    /// Modelled cost of one fsync-equivalent, microseconds.
    pub fsync_us: f64,
    /// p50 transaction latency across the fleet, milliseconds.
    pub p50_ms: f64,
    /// p99 transaction latency across the fleet, milliseconds.
    pub p99_ms: f64,
    /// Total WAL sync time charged to host CPU, milliseconds.
    pub commit_ms: f64,
}

impl fmt::Display for DurabilityRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch {:>2} × fsync {:>6.0} us: p50 {:>7.1} ms p99 {:>7.1} ms | {:>8.2} ms in WAL syncs",
            self.commit_batch, self.fsync_us, self.p50_ms, self.p99_ms, self.commit_ms
        )
    }
}

/// One row of the recovery-outage pricing table.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Durable journal entries replayed.
    pub replayed: u64,
    /// Commits per WAL sync window during replay.
    pub commit_batch: u32,
    /// Modelled fsync-equivalent cost, microseconds.
    pub fsync_us: f64,
    /// Total crash outage (remount + replay + re-syncs), milliseconds.
    pub outage_ms: f64,
}

impl fmt::Display for RecoveryRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replay {:>4} entries under batch {:>2} × fsync {:>6.0} us: outage {:>8.1} ms",
            self.replayed, self.commit_batch, self.fsync_us, self.outage_ms
        )
    }
}

/// The complete F11 result set.
#[derive(Debug, Clone)]
pub struct DbNumbers {
    /// Buying users per sweep cell.
    pub users: u64,
    /// Sessions (journaled purchases) per user.
    pub sessions_per_user: u64,
    /// The commit-batch × fsync-cost sweep.
    pub sweep: Vec<DurabilityRow>,
    /// The recovery-outage pricing table.
    pub recovery: Vec<RecoveryRow>,
    /// WAL fsyncs observed for 100 commits at each batch size.
    pub fsyncs_per_100_commits: Vec<(u32, u64)>,
    /// Whether the explicit zero-cost-policy fleet came out
    /// byte-identical to the policy-free fleet at 1/2/4/8 threads.
    pub zero_cost_identical: bool,
    /// Secondary-index entries rebuilt by the recovery micro-leg.
    pub index_entries_rebuilt: u64,
    /// Wall-clock nanoseconds for that recovery (machine-dependent).
    pub rebuild_wall_ns: f64,
}

impl fmt::Display for DbNumbers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "buy fleet: {} users × {} journaled purchases, seed {}",
            self.users, self.sessions_per_user, F11_SEED
        )?;
        for row in &self.sweep {
            writeln!(f, "  {row}")?;
        }
        writeln!(f, "crash recovery pricing:")?;
        for row in &self.recovery {
            writeln!(f, "  {row}")?;
        }
        let fsyncs: Vec<String> = self
            .fsyncs_per_100_commits
            .iter()
            .map(|(batch, fsyncs)| format!("batch {batch}: {fsyncs}"))
            .collect();
        writeln!(f, "fsyncs per 100 commits: {}", fsyncs.join(", "))?;
        writeln!(
            f,
            "zero-cost-policy fleet identical to policy-free fleet (1/2/4/8 threads): {}",
            self.zero_cost_identical
        )?;
        write!(
            f,
            "index rebuild on recovery: {} entries in {:.0} ns (wall clock)",
            self.index_entries_rebuilt, self.rebuild_wall_ns
        )
    }
}

impl DbNumbers {
    /// Renders the result as the `BENCH_db.json` document.
    pub fn to_json(&self) -> String {
        let sweep: Vec<String> = self
            .sweep
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"commit_batch\": {}, \"fsync_us\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"commit_ms\": {:.4} }}",
                    r.commit_batch, r.fsync_us, r.p50_ms, r.p99_ms, r.commit_ms
                )
            })
            .collect();
        let recovery: Vec<String> = self
            .recovery
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"replayed\": {}, \"commit_batch\": {}, \"fsync_us\": {:.1}, \"outage_ms\": {:.4} }}",
                    r.replayed, r.commit_batch, r.fsync_us, r.outage_ms
                )
            })
            .collect();
        let fsyncs: Vec<String> = self
            .fsyncs_per_100_commits
            .iter()
            .map(|(batch, fsyncs)| format!("\"batch_{batch}\": {fsyncs}"))
            .collect();
        format!(
            "{{\n  \"experiment\": \"F11_db\",\n  \"users\": {},\n  \"sessions_per_user\": {},\n  \"sweep\": [\n{}\n  ],\n  \"recovery\": [\n{}\n  ],\n  \"fsyncs_per_100_commits\": {{ {} }},\n  \"zero_cost_identical\": {},\n  \"index_entries_rebuilt\": {},\n  \"rebuild_wall_ns\": {:.1}\n}}\n",
            self.users,
            self.sessions_per_user,
            sweep.join(",\n"),
            recovery.join(",\n"),
            fsyncs.join(", "),
            self.zero_cost_identical,
            self.index_entries_rebuilt,
            self.rebuild_wall_ns
        )
    }
}

/// Runs the buy workload for one sweep cell: every user works through
/// `SESSIONS` commerce sessions, each ending in a journaled purchase.
/// Returns the merged counters plus the cell's metrics (the WAL sync
/// time lands on `host.db.commit_ns`).
fn buy_cell(policy: DurabilityPolicy, users: u64) -> (WorkloadCounters, obs::Metrics) {
    let scenario = Scenario::new("F11")
        .app(Category::Commerce)
        .sessions_per_user(SESSIONS)
        .think_time(1.0)
        .seed(F11_SEED)
        .durability(policy);
    let guard = obs::metrics::enable();
    let mut counters = WorkloadCounters::default();
    for user in 0..users {
        scenario.run_user(user, &mut counters);
    }
    drop(guard);
    (counters, obs::metrics::take())
}

/// Engine-level group-commit arithmetic: 100 single-row commits under
/// `batch`, then the observed WAL fsync count (`ceil(100 / batch)`).
fn fsyncs_for_100_commits(batch: u32) -> u64 {
    let mut db = Database::new();
    db.create_table("ops", &["id", "v"], &[]).unwrap();
    db.set_durability(DurabilityPolicy::new(batch, 0));
    let before = db.wal_fsyncs();
    for id in 0..100i64 {
        db.insert("ops", vec![id.into(), (id * 7).into()]).unwrap();
    }
    // Drain the open window so a partial tail counts its final sync —
    // the same `ceil(commits / batch)` a crash-free shutdown pays.
    db.sync_journal();
    db.wal_fsyncs() - before
}

/// Wall-clock crash recovery over a seeded, indexed table: returns the
/// rebuilt secondary-index entry count (deterministic) and the elapsed
/// nanoseconds (machine-dependent, reported but never gated).
fn rebuild_micro() -> (u64, f64) {
    const ROWS: i64 = 2_000;
    let mut db = Database::new();
    db.create_table("wide", &["id", "bucket", "payload"], &["bucket"])
        .unwrap();
    let payload = "x".repeat(256);
    for id in 0..ROWS {
        db.insert(
            "wide",
            vec![id.into(), (id % 17).into(), payload.clone().into()],
        )
        .unwrap();
    }
    let journal = db.journal().to_vec();
    let started = Instant::now();
    let recovered = Database::recover(&journal).expect("clean journal recovers");
    let elapsed = started.elapsed().as_nanos() as f64;
    (recovered.index_entries_rebuilt(), elapsed)
}

/// Runs the full F11 experiment. `quick` shrinks the populations for CI
/// smoke runs; seeds and both sweep grids are identical either way.
pub fn run(quick: bool) -> DbNumbers {
    let users = if quick { 6 } else { 16 };

    let mut sweep = Vec::new();
    for &batch in &BATCHES {
        for &fsync_ns in &FSYNC_NS {
            let policy = DurabilityPolicy::new(batch, fsync_ns);
            let (counters, metrics) = buy_cell(policy, users);
            sweep.push(DurabilityRow {
                commit_batch: batch,
                fsync_us: fsync_ns as f64 / 1e3,
                p50_ms: counters.latency_percentile(50.0) * 1e3,
                p99_ms: counters.latency_percentile(99.0) * 1e3,
                commit_ms: metrics.counter("host.db.commit_ns") as f64 / 1e6,
            });
        }
    }

    let mut recovery = Vec::new();
    for &(batch, fsync_ns) in &[(1u32, 0u64), (4, 250_000), (16, 1_000_000)] {
        let policy = DurabilityPolicy::new(batch, fsync_ns);
        for &replayed in &[16u64, 64, 256] {
            recovery.push(RecoveryRow {
                replayed,
                commit_batch: batch,
                fsync_us: fsync_ns as f64 / 1e3,
                outage_ms: db_recovery_outage_ns(replayed, policy) as f64 / 1e6,
            });
        }
    }

    // Zero-cost identity, cross-checked at every thread count: a fleet
    // that *explicitly* carries the default policy (batch 1, fsync
    // 0 ns) must be byte-identical to one that never mentions
    // durability at all.
    let base = Scenario::new("F11-identity")
        .app(Category::Commerce)
        .users(if quick { 8 } else { 16 })
        .sessions_per_user(2)
        .seed(F11_SEED + 1);
    let plain = FleetRunner::new(base.clone()).threads(1).run().report.summary;
    let zero_cost_identical = [1, 2, 4, 8].iter().all(|&threads| {
        let explicit = FleetRunner::new(base.clone().durability(DurabilityPolicy::new(1, 0)))
            .threads(threads)
            .run()
            .report
            .summary;
        explicit == plain
    });

    let (index_entries_rebuilt, rebuild_wall_ns) = rebuild_micro();

    DbNumbers {
        users,
        sessions_per_user: SESSIONS,
        sweep,
        recovery,
        fsyncs_per_100_commits: BATCHES
            .iter()
            .map(|&batch| (batch, fsyncs_for_100_commits(batch)))
            .collect(),
        zero_cost_identical,
        index_entries_rebuilt,
        rebuild_wall_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_costs_what_the_policy_says_and_nothing_when_free() {
        let numbers = run(true);
        let free: Vec<&DurabilityRow> = numbers
            .sweep
            .iter()
            .filter(|r| r.fsync_us == 0.0)
            .collect();
        // fsync 0 ns is free at every batch size: no WAL time, and the
        // latency profile is the same as every other free cell.
        for row in &free {
            assert_eq!(row.commit_ms, 0.0, "{row}");
            assert_eq!(row.p50_ms, free[0].p50_ms, "{row}");
            assert_eq!(row.p99_ms, free[0].p99_ms, "{row}");
        }
        // At a fixed batch, paying more per fsync never lowers latency
        // or WAL time; at a fixed price, batching never raises WAL time.
        for &batch in &BATCHES {
            let rows: Vec<&DurabilityRow> = numbers
                .sweep
                .iter()
                .filter(|r| r.commit_batch == batch)
                .collect();
            for pair in rows.windows(2) {
                assert!(pair[1].p99_ms >= pair[0].p99_ms, "{} vs {}", pair[1], pair[0]);
                assert!(pair[1].commit_ms >= pair[0].commit_ms, "{}", pair[1]);
            }
        }
        let paid: Vec<&DurabilityRow> = numbers
            .sweep
            .iter()
            .filter(|r| r.fsync_us == 1_000.0)
            .collect();
        for pair in paid.windows(2) {
            assert!(
                pair[1].commit_ms <= pair[0].commit_ms,
                "group commit amortizes: {} vs {}",
                pair[1],
                pair[0]
            );
        }
        assert!(paid[0].commit_ms > 0.0, "batch 1 × 1 ms pays per commit");

        // Recovery pricing is monotone in journal length.
        for chunk in numbers.recovery.chunks(3) {
            for pair in chunk.windows(2) {
                assert!(pair[1].outage_ms > pair[0].outage_ms, "{}", pair[1]);
            }
        }
        for (batch, fsyncs) in &numbers.fsyncs_per_100_commits {
            assert_eq!(*fsyncs, 100u64.div_ceil(*batch as u64));
        }
        assert!(numbers.zero_cost_identical);
        assert!(numbers.index_entries_rebuilt > 0);
        assert!(numbers.rebuild_wall_ns > 0.0);
        let json = numbers.to_json();
        assert!(json.contains("\"zero_cost_identical\": true"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn the_sweep_is_deterministic() {
        let policy = DurabilityPolicy::new(4, 250_000);
        let (a, am) = buy_cell(policy, 3);
        let (b, bm) = buy_cell(policy, 3);
        assert_eq!(a, b, "same seed, same numbers");
        assert_eq!(
            am.counter("host.db.commit_ns"),
            bm.counter("host.db.commit_ns")
        );
        assert_eq!(a.attempted, 3 * SESSIONS * 2, "two steps per session");
    }
}
