//! X1 — TCP and its mobile variants over an error-prone wireless hop
//! with handoffs, at packet granularity.
//!
//! §5.2's claim, measured: plain TCP "performs poorly due to factors such
//! as error-prone wireless channels, frequent handoffs and
//! disconnections", and the three cited schemes recover the loss —
//! split-connection TCP (Yavatkar & Bhagawat \[16\]), snoop packet
//! caching (Balakrishnan et al. \[1\]) and fast retransmission after
//! handoff (Caceres & Iftode \[2\]).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use bytes::Bytes;
use netstack::node::Network;
use netstack::{Ip, Subnet};
use simnet::link::{LinkParams, LossModel};
use simnet::rng::rng_for;
use simnet::trace::Trace;
use obs::{EventKind, FlightDump, Layer, TraceEvent};
use simnet::{SimDuration, SimTime, Simulator};
use transport::{Connection, SnoopAgent, SocketAddr, SplitProxy, Tcp};
use wireless::HandoffController;

const FIXED: Ip = Ip::new(10, 0, 0, 1);
const BS: Ip = Ip::new(10, 0, 0, 254);
const MOBILE: Ip = Ip::new(172, 16, 0, 5);

/// The transport scheme under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Plain end-to-end Reno TCP.
    Reno,
    /// Split/indirect TCP at the base station \[16\].
    Split,
    /// Snoop packet caching at the base station \[1\].
    Snoop,
    /// Reno plus fast retransmission on handoff completion \[2\].
    FastHandoff,
}

impl Variant {
    /// All four variants.
    pub const ALL: [Variant; 4] = [
        Variant::Reno,
        Variant::Split,
        Variant::Snoop,
        Variant::FastHandoff,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Reno => "TCP Reno (baseline)",
            Variant::Split => "Split TCP [16]",
            Variant::Snoop => "Snoop caching [1]",
            Variant::FastHandoff => "Fast handoff retx [2]",
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of one X1 run.
#[derive(Debug, Clone, Copy)]
pub struct TcpxConfig {
    /// Bytes to transfer fixed → mobile.
    pub bytes: usize,
    /// Wireless bit-error rate.
    pub ber: f64,
    /// Handoff period (None = no handoffs).
    pub handoff_period: Option<SimDuration>,
    /// Handoff blackout duration.
    pub blackout: SimDuration,
    /// Simulated-time budget before declaring the run stalled.
    pub time_limit: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TcpxConfig {
    fn default() -> Self {
        TcpxConfig {
            bytes: 400_000,
            ber: 1e-5,
            handoff_period: Some(SimDuration::from_millis(3_000)),
            blackout: SimDuration::from_millis(250),
            time_limit: SimDuration::from_secs(600),
            seed: 99,
        }
    }
}

/// The outcome of one run.
#[derive(Debug, Clone)]
pub struct TcpxRow {
    /// Scheme under test.
    pub variant: Variant,
    /// Wireless BER used.
    pub ber: f64,
    /// Whether handoffs were active.
    pub handoffs: bool,
    /// Handoff period in seconds (0 when disabled).
    pub handoff_period_secs: f64,
    /// Whether the full payload arrived within the time budget.
    pub completed: bool,
    /// Transfer time, seconds.
    pub elapsed_secs: f64,
    /// Application goodput, bits per second.
    pub goodput_bps: f64,
    /// Retransmissions by the *fixed sender* (end-to-end recovery cost).
    pub sender_retransmits: u64,
    /// RTOs taken by the fixed sender.
    pub sender_rtos: u64,
    /// Local retransmissions by the base station (snoop only).
    pub local_retransmits: u64,
    /// Flight-recorder dump when the run stalled: the trace tail plus
    /// the layer the stall is attributed to. `None` on completion.
    pub dump: Option<FlightDump>,
}

impl fmt::Display for TcpxRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} ber={:>7.0e} handoff={:<9} {:>8.1} kbps in {:>6.2} s, sender retx {:>4}, RTOs {:>3}, local retx {:>4}{}",
            self.variant.name(),
            self.ber,
            if self.handoffs { format!("per {:.1}s", self.handoff_period_secs) } else { "none".to_owned() },
            self.goodput_bps / 1e3,
            self.elapsed_secs,
            self.sender_retransmits,
            self.sender_rtos,
            self.local_retransmits,
            if self.completed { "" } else { "  [STALLED]" }
        )
    }
}

/// Runs one configuration of the X1 experiment.
pub fn run_one(variant: Variant, config: &TcpxConfig) -> TcpxRow {
    let mut sim = Simulator::new();
    // Generous bound: on a stall the tail of this buffer becomes the
    // flight-recorder dump, so keep enough history to see the cause.
    let trace = Trace::bounded(64);

    let mut net = Network::new();
    let fixed = net.add_node("fixed", FIXED);
    let bs = net.add_node("bs", BS);
    let mobile = net.add_node("mobile", MOBILE);

    // The fixed host is far away (100 ms one way): the bandwidth-delay
    // product is large enough that congestion-window collapses at the
    // sender genuinely cost throughput — the regime the cited papers
    // evaluate in.
    Network::connect(
        &fixed,
        FIXED,
        &bs,
        BS,
        LinkParams::reliable(10_000_000, SimDuration::from_millis(100)),
    );
    let mut wparams = LinkParams::reliable(2_000_000, SimDuration::from_millis(5));
    wparams.loss = if config.ber > 0.0 {
        LossModel::BitError { ber: config.ber }
    } else {
        LossModel::None
    };
    wparams.queue_capacity = 256;
    let (down, up) = Network::connect(&bs, BS, &mobile, MOBILE, wparams);
    down.set_rng(rng_for(config.seed, "tcpx.down"));
    up.set_rng(rng_for(config.seed, "tcpx.up"));
    fixed.add_route(Subnet::DEFAULT, BS);
    mobile.add_route(Subnet::DEFAULT, BS);

    let tcp_fixed = Tcp::install(Rc::clone(&fixed), trace.clone());
    let tcp_bs = Tcp::install(Rc::clone(&bs), trace.clone());
    let tcp_mobile = Tcp::install(Rc::clone(&mobile), trace.clone());

    // Receiver bookkeeping: bytes received and when the last one landed.
    let received: Rc<RefCell<(usize, SimTime)>> = Rc::new(RefCell::new((0, SimTime::ZERO)));
    let mobile_conn: Rc<RefCell<Option<Rc<Connection>>>> = Rc::default();
    {
        let received = Rc::clone(&received);
        let mobile_conn = Rc::clone(&mobile_conn);
        tcp_mobile.listen(80, move |_sim, conn| {
            *mobile_conn.borrow_mut() = Some(Rc::clone(&conn));
            let received = Rc::clone(&received);
            conn.on_data(move |sim, data: Bytes| {
                let mut r = received.borrow_mut();
                r.0 += data.len();
                r.1 = sim.now();
            });
        });
    }

    // Variant-specific base-station machinery.
    let snoop = match variant {
        Variant::Snoop => Some(SnoopAgent::install(
            &bs,
            Subnet::new(MOBILE, 24),
            trace.clone(),
        )),
        _ => None,
    };
    if variant == Variant::Split {
        SplitProxy::install(&tcp_bs, BS, 80, SocketAddr::new(MOBILE, 80), trace.clone());
    }

    // Handoff blackouts on both wireless directions.
    let controller = config.handoff_period.map(|period| {
        let ctl = HandoffController::over_links(
            vec![Rc::clone(&down), Rc::clone(&up)],
            period,
            config.blackout,
        );
        ctl.start(&mut sim);
        ctl
    });
    if variant == Variant::FastHandoff {
        if let Some(ctl) = &controller {
            let mobile_conn = Rc::clone(&mobile_conn);
            ctl.on_complete(move |sim| {
                if let Some(conn) = mobile_conn.borrow().as_ref() {
                    conn.handoff_complete(sim);
                }
            });
        }
    }

    // Kick off the transfer.
    let target = match variant {
        Variant::Split => SocketAddr::new(BS, 80),
        _ => SocketAddr::new(MOBILE, 80),
    };
    // One allocation for the whole transfer; TCP slices it per segment.
    let payload = Bytes::from(vec![0xA5u8; config.bytes]);
    let sender = tcp_fixed.connect(&mut sim, FIXED, target);
    sender.send_bytes(&mut sim, payload);

    sim.run_until(SimTime::ZERO + config.time_limit);

    let (got, last_at) = *received.borrow();
    let completed = got >= config.bytes;
    let elapsed = if completed {
        last_at.as_secs_f64()
    } else {
        config.time_limit.as_secs_f64()
    };
    let dump = (!completed).then(|| {
        // Attribute the stall: wireless-leg drops or active handoff
        // blackouts point at the wireless layer; otherwise the transfer
        // died on the wired TCP path.
        let wireless_drops = down.dropped_loss.get()
            + down.dropped_queue.get()
            + up.dropped_loss.get()
            + up.dropped_queue.get();
        let layer = if wireless_drops > 0 || controller.is_some() {
            Layer::Wireless
        } else {
            Layer::Wired
        };
        FlightDump {
            user: 0,
            txn: 0,
            reason: format!(
                "{}: transfer stalled at {got}/{} bytes after {:.1} s ({} wireless drops)",
                variant.name(),
                config.bytes,
                elapsed,
                wireless_drops
            ),
            layer,
            events: trace
                .snapshot()
                .into_iter()
                .map(|e| TraceEvent {
                    at_ns: e.at.as_nanos(),
                    dur_ns: 0,
                    layer: match e.category {
                        "handoff" | "snoop" | "mobileip" => Layer::Wireless,
                        "split" | "wap" => Layer::Middleware,
                        _ => Layer::Wired,
                    },
                    name: format!("{}: {}", e.category, e.message).into(),
                    kind: EventKind::Instant,
                    user: 0,
                    txn: 0,
                })
                .collect(),
        }
    });
    TcpxRow {
        variant,
        ber: config.ber,
        handoffs: config.handoff_period.is_some(),
        handoff_period_secs: config
            .handoff_period
            .map(|p| p.as_secs_f64())
            .unwrap_or(0.0),
        completed,
        elapsed_secs: elapsed,
        goodput_bps: got as f64 * 8.0 / elapsed.max(1e-9),
        sender_retransmits: sender.stats.retransmits.get(),
        sender_rtos: sender.stats.rtos.get(),
        local_retransmits: snoop.map(|s| s.local_retransmits.get()).unwrap_or(0),
        dump,
    }
}

/// Runs all four variants under `config`.
pub fn tcp_variants(config: &TcpxConfig) -> Vec<TcpxRow> {
    Variant::ALL.iter().map(|&v| run_one(v, config)).collect()
}

/// The BER sweep: all variants at each bit-error rate (no handoffs), plus
/// the handoff scenario at the base BER.
pub fn full_sweep(bytes: usize) -> Vec<TcpxRow> {
    let mut rows = Vec::new();
    for &ber in &[0.0, 1e-6, 5e-6, 1e-5, 2e-5] {
        let config = TcpxConfig {
            bytes,
            ber,
            handoff_period: None,
            ..Default::default()
        };
        rows.extend(tcp_variants(&config));
    }
    // Moderate handoffs (one every 3 s) …
    let config = TcpxConfig {
        bytes,
        ..Default::default()
    };
    rows.extend(tcp_variants(&config));
    // … and aggressive cell-crossing (every 1.5 s), where plain TCP's
    // backed-off timers can no longer keep up at all.
    let config = TcpxConfig {
        bytes,
        handoff_period: Some(SimDuration::from_millis(1_500)),
        ..Default::default()
    };
    rows.extend(tcp_variants(&config));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ber: f64, handoffs: bool) -> TcpxConfig {
        TcpxConfig {
            bytes: 400_000,
            ber,
            handoff_period: handoffs.then(|| SimDuration::from_millis(3_000)),
            ..Default::default()
        }
    }

    #[test]
    fn clean_channel_all_variants_equal_ish() {
        for variant in Variant::ALL {
            let row = run_one(variant, &cfg(0.0, false));
            assert!(row.completed, "{variant}");
            assert_eq!(row.sender_rtos, 0, "{variant}");
        }
    }

    #[test]
    fn lossy_channel_reno_pays_end_to_end_while_snoop_hides_it() {
        let reno = run_one(Variant::Reno, &cfg(1e-5, false));
        let snoop = run_one(Variant::Snoop, &cfg(1e-5, false));
        assert!(reno.completed && snoop.completed);
        assert!(reno.sender_retransmits > 0, "BER must hurt Reno");
        assert!(
            snoop.sender_retransmits * 2 < reno.sender_retransmits.max(1),
            "snoop {} vs reno {}",
            snoop.sender_retransmits,
            reno.sender_retransmits
        );
        assert!(snoop.local_retransmits > 0);
        assert!(snoop.goodput_bps >= reno.goodput_bps * 0.95);
    }

    #[test]
    fn split_confines_loss_to_the_wireless_leg() {
        let split = run_one(Variant::Split, &cfg(1e-5, false));
        assert!(split.completed);
        // The fixed sender crosses only the lossless wired leg.
        assert_eq!(split.sender_retransmits, 0);
        assert_eq!(split.sender_rtos, 0);
    }

    #[test]
    fn handoffs_hurt_reno_and_fast_retransmit_recovers() {
        // The transfer must span several handoff cycles for §5.2's claim
        // ("frequent handoffs and disconnections") to bite: a 400 KB
        // transfer finishes around the first 3 s blackout and Reno can
        // ride it out on duplicate ACKs alone. At 800 KB the baseline
        // provably loses whole windows to repeated blackouts and falls
        // into RTO exponential backoff — the failure mode [2] fixes —
        // and may not finish within the budget at all.
        let config = TcpxConfig {
            bytes: 800_000,
            ..cfg(1e-6, true)
        };
        let reno = run_one(Variant::Reno, &config);
        let fast = run_one(Variant::FastHandoff, &config);
        assert!(fast.completed, "the [2] scheme must finish");
        assert!(
            fast.goodput_bps > reno.goodput_bps * 2.0,
            "fast {} vs reno {}",
            fast.goodput_bps,
            reno.goodput_bps
        );
        // The whole point of [2]: recover by fast retransmit, not RTO.
        assert!(fast.sender_rtos <= reno.sender_rtos);
        assert!(reno.sender_rtos >= 1, "handoffs must hurt the baseline");
    }

    #[test]
    fn aggressive_handoffs_starve_reno_but_not_the_fix() {
        let aggressive = TcpxConfig {
            bytes: 400_000,
            ber: 1e-6,
            handoff_period: Some(SimDuration::from_millis(1_500)),
            ..Default::default()
        };
        let reno = run_one(Variant::Reno, &aggressive);
        let fast = run_one(Variant::FastHandoff, &aggressive);
        assert!(fast.completed, "the [2] scheme must survive");
        assert!(
            fast.goodput_bps > reno.goodput_bps * 3.0,
            "fast {} vs reno {}",
            fast.goodput_bps,
            reno.goodput_bps
        );
    }

    #[test]
    fn stalled_runs_carry_a_flight_dump_naming_the_layer() {
        // A time budget far too small for the payload guarantees a stall.
        let strangled = TcpxConfig {
            bytes: 400_000,
            ber: 1e-5,
            handoff_period: Some(SimDuration::from_millis(1_500)),
            time_limit: SimDuration::from_secs(3),
            ..Default::default()
        };
        let row = run_one(Variant::Reno, &strangled);
        assert!(!row.completed);
        let dump = row.dump.expect("stalled run must carry a dump");
        assert_eq!(dump.layer, obs::Layer::Wireless, "{}", dump.reason);
        assert!(dump.reason.contains("stalled"), "{}", dump.reason);
        assert!(!dump.events.is_empty(), "dump must carry the trace tail");

        // Completed runs carry none.
        let ok = run_one(Variant::Snoop, &cfg(0.0, false));
        assert!(ok.completed && ok.dump.is_none());
    }

    #[test]
    fn goodput_collapses_with_ber_for_reno() {
        let clean = run_one(Variant::Reno, &cfg(0.0, false));
        let dirty = run_one(Variant::Reno, &cfg(2e-5, false));
        assert!(
            clean.goodput_bps > dirty.goodput_bps * 2.0,
            "clean {} dirty {}",
            clean.goodput_bps,
            dirty.goodput_bps
        );
    }
}
