//! The perf-regression harness: field-by-field diffs of `BENCH_*.json`
//! artefact sets against committed baselines.
//!
//! Every experiment writes a JSON artefact, but until now nothing
//! compared one run against another — the bench trajectory was a pile
//! of unread files. This module diffs two artefacts (or two directories
//! of them) with **per-metric policies**:
//!
//! * **Gated** metrics are the deterministic outputs of the fixed-seed
//!   simulations — sim-time latencies, counts, rates, digests,
//!   identities. They must match the baseline within a tolerance
//!   (default 1%, covering decimal formatting) on any machine, so a
//!   drift is a real behaviour change and fails the diff.
//! * **Informational** metrics are wall-clock measurements (wall
//!   seconds, events/s, tps, overhead percentages, RSS, thread counts).
//!   They vary across machines and runs, so they are reported in the
//!   delta table but never gate.
//!
//! The output is a markdown delta table; the exit status is the gate.
//! `scripts/tier1.sh` runs the `benchdiff` bin against
//! `bench/baselines/*.json` on every PR, so the perf trajectory is
//! recorded — and regressions in deterministic behaviour are caught —
//! from this commit forward.
//!
//! The parser below is a deliberately tiny recursive-descent JSON
//! reader: the artefacts are hand-emitted by the experiments, the
//! workspace vendors no serde, and rejecting exotic JSON loudly is a
//! feature in a gate.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON scalar at a flattened path.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string value.
    Str(String),
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Null => write!(f, "null"),
            Scalar::Bool(b) => write!(f, "{b}"),
            Scalar::Num(n) => write!(f, "{n}"),
            Scalar::Str(s) => write!(f, "{s:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".into())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != c {
            return Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Copy a run of plain bytes in one go.
                    let start = self.pos;
                    while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    /// Parses one value, appending `(path, scalar)` pairs for every
    /// scalar leaf under `path` (objects use `.key`, arrays `[i]`).
    fn value(&mut self, path: &str, out: &mut BTreeMap<String, Scalar>) -> Result<(), String> {
        match self.peek()? {
            b'{' => {
                self.pos += 1;
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    let sub = if path.is_empty() {
                        key
                    } else {
                        format!("{path}.{key}")
                    };
                    self.value(&sub, out)?;
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(());
                        }
                        other => return Err(format!("expected , or }} found {:?}", other as char)),
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(());
                }
                let mut i = 0usize;
                loop {
                    self.value(&format!("{path}[{i}]"), out)?;
                    i += 1;
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(());
                        }
                        other => return Err(format!("expected , or ] found {:?}", other as char)),
                    }
                }
            }
            b'"' => {
                let s = self.string()?;
                out.insert(path.to_owned(), Scalar::Str(s));
                Ok(())
            }
            b't' => {
                self.literal("true")?;
                out.insert(path.to_owned(), Scalar::Bool(true));
                Ok(())
            }
            b'f' => {
                self.literal("false")?;
                out.insert(path.to_owned(), Scalar::Bool(false));
                Ok(())
            }
            b'n' => {
                self.literal("null")?;
                out.insert(path.to_owned(), Scalar::Null);
                Ok(())
            }
            _ => {
                let n = self.number()?;
                out.insert(path.to_owned(), Scalar::Num(n));
                Ok(())
            }
        }
    }
}

/// Parses a JSON document into a flat `path → scalar` map
/// (`"knee[2].p99_ms" → Num(…)`).
pub fn flatten(doc: &str) -> Result<BTreeMap<String, Scalar>, String> {
    let mut parser = Parser {
        bytes: doc.as_bytes(),
        pos: 0,
    };
    let mut out = BTreeMap::new();
    parser.value("", &mut out)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing bytes after document at {}", parser.pos));
    }
    Ok(out)
}

/// Metric names that are wall-clock (or machine-shape) measurements:
/// reported in the delta table, never gated. Matched against the final
/// path segment.
pub const INFORMATIONAL: &[&str] = &[
    "wall_secs",
    "events_per_sec",
    "tps",
    "speedup",
    "overhead_pct",
    "overhead_floor_pct",
    "overhead_disabled_pct",
    "overhead_disabled_floor_pct",
    "overhead_enabled_pct",
    "peak_rss_bytes",
    "db_get_ns",
    "rebuild_wall_ns",
    "threads",
];

/// The verdict on one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Gated and within tolerance.
    Ok,
    /// Informational metric: reported, never gated.
    Info,
    /// Present only in the current run (a new metric; not a failure).
    New,
    /// Gated and out of tolerance, or missing from the current run.
    Fail,
}

impl Status {
    fn label(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Info => "info",
            Status::New => "new",
            Status::Fail => "FAIL",
        }
    }
}

/// One row of the delta table.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Flattened metric path.
    pub metric: String,
    /// Baseline value, if the baseline has the metric.
    pub baseline: Option<Scalar>,
    /// Current value, if the current run has the metric.
    pub current: Option<Scalar>,
    /// Relative delta in percent, for numeric pairs.
    pub delta_pct: Option<f64>,
    /// The verdict.
    pub status: Status,
}

/// The full comparison of one artefact pair.
#[derive(Debug, Clone)]
pub struct Diff {
    /// Artefact label (file stem) the rows belong to.
    pub label: String,
    /// Every metric in baseline ∪ current, in path order.
    pub rows: Vec<Delta>,
}

impl Diff {
    /// True when no gated metric failed.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.status != Status::Fail)
    }

    /// Rows that failed the gate.
    pub fn failures(&self) -> impl Iterator<Item = &Delta> {
        self.rows.iter().filter(|r| r.status == Status::Fail)
    }

    /// Renders the markdown delta table. `full` includes every metric;
    /// otherwise unchanged gated metrics are elided and only changed,
    /// informational, new and failing rows appear.
    pub fn to_markdown(&self, full: bool) -> String {
        let mut out = format!(
            "### {}\n\n| metric | baseline | current | delta | status |\n|---|---:|---:|---:|---|\n",
            self.label
        );
        let mut elided = 0usize;
        for row in &self.rows {
            let unchanged = row.status == Status::Ok && row.delta_pct.is_none_or(|d| d == 0.0);
            if !full && unchanged {
                elided += 1;
                continue;
            }
            let fmt_val = |v: &Option<Scalar>| v.as_ref().map_or("—".into(), Scalar::to_string);
            let delta = row
                .delta_pct
                .map_or("—".into(), |d| format!("{d:+.2}%"));
            out.push_str(&format!(
                "| `{}` | {} | {} | {} | {} |\n",
                row.metric,
                fmt_val(&row.baseline),
                fmt_val(&row.current),
                delta,
                row.status.label()
            ));
        }
        if elided > 0 {
            out.push_str(&format!("\n_{elided} unchanged gated metrics elided._\n"));
        }
        out
    }
}

/// Per-run tolerance knobs.
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Default relative tolerance for gated numeric metrics.
    pub default_rel: f64,
    /// Overrides by final path segment (`("p99_ms", 0.05)` = 5%).
    pub per_metric: Vec<(String, f64)>,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            default_rel: 0.01,
            per_metric: Vec::new(),
        }
    }
}

impl Tolerances {
    fn for_metric(&self, metric: &str) -> f64 {
        let segment = last_segment(metric);
        self.per_metric
            .iter()
            .find(|(name, _)| name == segment)
            .map_or(self.default_rel, |&(_, tol)| tol)
    }
}

/// The final path segment without any array index: the metric's name.
fn last_segment(path: &str) -> &str {
    let tail = path.rsplit('.').next().unwrap_or(path);
    tail.split('[').next().unwrap_or(tail)
}

fn numbers_match(a: f64, b: f64, rel: f64) -> bool {
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= rel * scale + 1e-9
}

/// Compares a baseline artefact against a current one.
pub fn diff(
    label: &str,
    baseline: &BTreeMap<String, Scalar>,
    current: &BTreeMap<String, Scalar>,
    tol: &Tolerances,
) -> Diff {
    let mut rows = Vec::new();
    let metrics: std::collections::BTreeSet<&String> =
        baseline.keys().chain(current.keys()).collect();
    for metric in metrics {
        let base = baseline.get(metric).cloned();
        let cur = current.get(metric).cloned();
        let informational = INFORMATIONAL.contains(&last_segment(metric));
        let delta_pct = match (&base, &cur) {
            (Some(Scalar::Num(a)), Some(Scalar::Num(b))) if a.abs() > 1e-12 => {
                Some((b - a) / a.abs() * 100.0)
            }
            _ => None,
        };
        let status = match (&base, &cur) {
            (Some(_), None) => Status::Fail, // metric vanished: schema regression
            (None, Some(_)) => Status::New,
            (Some(a), Some(b)) => {
                if informational {
                    Status::Info
                } else {
                    let matches = match (a, b) {
                        (Scalar::Num(a), Scalar::Num(b)) => {
                            numbers_match(*a, *b, tol.for_metric(metric))
                        }
                        (a, b) => a == b,
                    };
                    if matches {
                        Status::Ok
                    } else {
                        Status::Fail
                    }
                }
            }
            (None, None) => unreachable!("metric came from one of the maps"),
        };
        rows.push(Delta {
            metric: metric.clone(),
            baseline: base,
            current: cur,
            delta_pct,
            status,
        });
    }
    Diff {
        label: label.to_owned(),
        rows,
    }
}

/// Parses and compares two artefact documents.
pub fn diff_docs(
    label: &str,
    baseline_doc: &str,
    current_doc: &str,
    tol: &Tolerances,
) -> Result<Diff, String> {
    let baseline =
        flatten(baseline_doc).map_err(|e| format!("{label}: baseline parse error: {e}"))?;
    let current = flatten(current_doc).map_err(|e| format!("{label}: current parse error: {e}"))?;
    Ok(diff(label, &baseline, &current, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_walks_nesting_arrays_and_escapes() {
        let flat = flatten(
            "{\"a\": {\"b\": [1, 2.5, {\"c\": true}]}, \"s\": \"x\\n\\\"y\\\"\", \"z\": null}",
        )
        .unwrap();
        assert_eq!(flat["a.b[0]"], Scalar::Num(1.0));
        assert_eq!(flat["a.b[1]"], Scalar::Num(2.5));
        assert_eq!(flat["a.b[2].c"], Scalar::Bool(true));
        assert_eq!(flat["s"], Scalar::Str("x\n\"y\"".into()));
        assert_eq!(flat["z"], Scalar::Null);
    }

    #[test]
    fn flatten_rejects_malformed_documents() {
        assert!(flatten("{\"a\": }").is_err());
        assert!(flatten("{\"a\": 1} trailing").is_err());
        assert!(flatten("{\"a\": 1").is_err());
    }

    #[test]
    fn identical_documents_pass() {
        let doc = "{\"p99_ms\": 134.2, \"wall_secs\": 0.5, \"ok\": true}";
        let d = diff_docs("t", doc, doc, &Tolerances::default()).unwrap();
        assert!(d.passed());
    }

    #[test]
    fn wall_clock_drift_is_informational_but_sim_drift_fails() {
        let base = "{\"p99_ms\": 100.0, \"wall_secs\": 0.5}";
        let noisy = "{\"p99_ms\": 100.5, \"wall_secs\": 5.0}";
        let d = diff_docs("t", base, noisy, &Tolerances::default()).unwrap();
        assert!(d.passed(), "1% tolerance absorbs formatting drift: {d:?}");

        let regressed = "{\"p99_ms\": 150.0, \"wall_secs\": 0.5}";
        let d = diff_docs("t", base, regressed, &Tolerances::default()).unwrap();
        assert!(!d.passed());
        let failures: Vec<&str> = d.failures().map(|r| r.metric.as_str()).collect();
        assert_eq!(failures, ["p99_ms"]);
    }

    #[test]
    fn booleans_strings_and_missing_metrics_gate_exactly() {
        let base = "{\"identity\": true, \"digest\": \"abc\", \"count\": 4}";
        let flipped = "{\"identity\": false, \"digest\": \"abc\", \"count\": 4}";
        assert!(!diff_docs("t", base, flipped, &Tolerances::default()).unwrap().passed());
        let vanished = "{\"identity\": true, \"digest\": \"abc\"}";
        assert!(!diff_docs("t", base, vanished, &Tolerances::default()).unwrap().passed());
        let grown = "{\"identity\": true, \"digest\": \"abc\", \"count\": 4, \"extra\": 1}";
        let d = diff_docs("t", base, grown, &Tolerances::default()).unwrap();
        assert!(d.passed(), "new metrics are not regressions");
        assert!(d.rows.iter().any(|r| r.status == Status::New));
    }

    #[test]
    fn per_metric_tolerance_overrides_the_default() {
        let base = "{\"hit_rate\": 0.50}";
        let cur = "{\"hit_rate\": 0.52}";
        assert!(!diff_docs("t", base, cur, &Tolerances::default()).unwrap().passed());
        let loose = Tolerances {
            per_metric: vec![("hit_rate".into(), 0.10)],
            ..Tolerances::default()
        };
        assert!(diff_docs("t", base, cur, &loose).unwrap().passed());
    }

    #[test]
    fn markdown_table_elides_unchanged_and_names_failures() {
        let base = "{\"a\": 1, \"b\": 2, \"wall_secs\": 1.0}";
        let cur = "{\"a\": 1, \"b\": 4, \"wall_secs\": 1.5}";
        let d = diff_docs("t", base, cur, &Tolerances::default()).unwrap();
        let md = d.to_markdown(false);
        assert!(md.contains("| `b` | 2 | 4 | +100.00% | FAIL |"), "{md}");
        assert!(md.contains("| `wall_secs` |"), "{md}");
        assert!(!md.contains("| `a` |"), "unchanged gated rows elide: {md}");
        assert!(md.contains("1 unchanged gated metrics elided"), "{md}");
    }

    #[test]
    fn real_artefact_shapes_round_trip() {
        // A miniature BENCH_contention.json in the real emitter's style.
        let doc = "{\n  \"experiment\": \"F8_contention\",\n  \"knee\": [\n    { \"users\": 1, \"p99_ms\": 134.2 },\n    { \"users\": 32, \"p99_ms\": 7800.0 }\n  ],\n  \"thread_identity\": true\n}\n";
        let d = diff_docs("contention", doc, doc, &Tolerances::default()).unwrap();
        assert!(d.passed());
        assert!(d.rows.iter().any(|r| r.metric == "knee[1].p99_ms"));
    }
}
