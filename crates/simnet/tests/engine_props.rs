//! Property tests for the discrete-event engine and link model.

use proptest::prelude::*;
use simnet::rng::rng_for;
use simnet::{Link, LinkParams, SimDuration, SimTime, Simulator};
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events always fire in (time, insertion) order regardless of the
    /// order they were scheduled in.
    #[test]
    fn events_fire_in_causal_order(times in proptest::collection::vec(0u64..10_000, 1..50)) {
        let mut sim = Simulator::new();
        let fired: Rc<RefCell<Vec<(u64, usize)>>> = Rc::default();
        for (seq, &t) in times.iter().enumerate() {
            let fired = Rc::clone(&fired);
            sim.schedule_at(SimTime::from_micros(t), move |sim| {
                fired.borrow_mut().push((sim.now().as_micros(), seq));
            });
        }
        sim.run();
        let fired = fired.borrow();
        prop_assert_eq!(fired.len(), times.len());
        for window in fired.windows(2) {
            let (t0, s0) = window[0];
            let (t1, s1) = window[1];
            prop_assert!(t0 < t1 || (t0 == t1 && s0 < s1), "({t0},{s0}) then ({t1},{s1})");
        }
        // The clock ends at the latest event.
        prop_assert_eq!(sim.now().as_micros(), *times.iter().max().unwrap());
    }

    /// A lossless FIFO link preserves message order and conserves bytes.
    #[test]
    fn lossless_links_preserve_order_and_bytes(
        sizes in proptest::collection::vec(1usize..5_000, 1..40),
        bandwidth_kbps in 8u64..100_000,
        prop_ms in 0u64..100,
    ) {
        let mut sim = Simulator::new();
        let link = Link::new(LinkParams {
            bandwidth_bps: bandwidth_kbps * 1000,
            propagation: SimDuration::from_millis(prop_ms),
            queue_capacity: usize::MAX,
            loss: simnet::LossModel::None,
        });
        let got: Rc<RefCell<Vec<usize>>> = Rc::default();
        {
            let got = Rc::clone(&got);
            link.set_receiver(move |_sim, msg: Vec<u8>| got.borrow_mut().push(msg.len()));
        }
        for &n in &sizes {
            link.send(&mut sim, vec![0u8; n]);
        }
        sim.run();
        prop_assert_eq!(&*got.borrow(), &sizes, "FIFO order violated");
        prop_assert_eq!(link.bytes_delivered.get(), sizes.iter().map(|&n| n as u64).sum::<u64>());
        // Total time is at least the serialisation of every byte.
        let ser: u64 = sizes
            .iter()
            .map(|&n| SimDuration::transmission(n, bandwidth_kbps * 1000).as_nanos())
            .sum();
        prop_assert!(sim.now().as_nanos() >= ser);
    }

    /// Bernoulli loss statistics: delivered + dropped == offered, and the
    /// same seed reproduces the same outcome exactly.
    #[test]
    fn loss_accounting_balances(p_pct in 0u32..=100, n in 1usize..500, seed in 0u64..100) {
        let run = || {
            let mut sim = Simulator::new();
            let link = Link::with_rng(
                LinkParams {
                    bandwidth_bps: 1_000_000_000,
                    propagation: SimDuration::ZERO,
                    queue_capacity: usize::MAX,
                    loss: simnet::LossModel::Bernoulli { p: p_pct as f64 / 100.0 },
                },
                rng_for(seed, "prop.loss"),
            );
            link.set_receiver(|_sim, _msg: Vec<u8>| {});
            for _ in 0..n {
                link.send(&mut sim, vec![0u8; 64]);
            }
            sim.run();
            (link.delivered.get(), link.dropped_loss.get())
        };
        let (delivered, dropped) = run();
        prop_assert_eq!(delivered + dropped, n as u64);
        prop_assert_eq!(run(), (delivered, dropped), "same seed, same outcome");
        if p_pct == 0 { prop_assert_eq!(dropped, 0); }
        if p_pct == 100 { prop_assert_eq!(delivered, 0); }
    }
}
