//! Differential property test: the timer-wheel scheduler must fire
//! arbitrary interleaved schedules in *exactly* the order of the reference
//! `BinaryHeap` scheduler ([`BaselineSimulator`]).
//!
//! The generated programs deliberately stress the wheel's seams: zero
//! delays and same-tick ties (ordering must fall back to insertion `seq`),
//! delays straddling the tick size and the level-0/level-1/overflow span
//! boundaries, and events that schedule further events from inside their
//! own handler (whose entries enter the wheel mid-flight, after the cursor
//! has advanced).

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use simnet::{BaselineSimulator, SimTime, Simulator};

/// A schedule program: each node is an event scheduled `delay_ns` after
/// the moment it is *spawned* (at setup for roots, from inside the parent
/// handler for children).
#[derive(Clone, Debug)]
struct Ev {
    delay_ns: u64,
    children: Vec<Ev>,
}

/// Minimal common surface of the two engines.
trait Engine: Sized + 'static {
    fn now_ns(&self) -> u64;
    fn schedule_abs(&mut self, at_ns: u64, f: Box<dyn FnOnce(&mut Self)>);
    fn run(&mut self);
}

impl Engine for Simulator {
    fn now_ns(&self) -> u64 {
        self.now().as_nanos()
    }
    fn schedule_abs(&mut self, at_ns: u64, f: Box<dyn FnOnce(&mut Self)>) {
        self.schedule_at(SimTime::from_nanos(at_ns), move |s: &mut Simulator| f(s));
    }
    fn run(&mut self) {
        Simulator::run(self);
    }
}

impl Engine for BaselineSimulator {
    fn now_ns(&self) -> u64 {
        self.now().as_nanos()
    }
    fn schedule_abs(&mut self, at_ns: u64, f: Box<dyn FnOnce(&mut Self)>) {
        self.schedule_at(SimTime::from_nanos(at_ns), move |s: &mut BaselineSimulator| {
            f(s)
        });
    }
    fn run(&mut self) {
        BaselineSimulator::run(self);
    }
}

/// Schedules `node` relative to the engine's current time; when it fires,
/// logs `(virtual time, id)` and spawns its children. IDs are handed out
/// in scheduling order, so identical firing order implies identical logs.
fn spawn<E: Engine>(
    sim: &mut E,
    node: Ev,
    log: Rc<RefCell<Vec<(u64, u32)>>>,
    ids: Rc<RefCell<u32>>,
) {
    let id = {
        let mut c = ids.borrow_mut();
        let id = *c;
        *c += 1;
        id
    };
    let at = sim.now_ns().saturating_add(node.delay_ns);
    sim.schedule_abs(
        at,
        Box::new(move |s: &mut E| {
            log.borrow_mut().push((s.now_ns(), id));
            for child in node.children {
                spawn(s, child, Rc::clone(&log), Rc::clone(&ids));
            }
        }),
    );
}

fn run_program<E: Engine>(mut sim: E, roots: &[Ev]) -> Vec<(u64, u32)> {
    let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::default();
    let ids: Rc<RefCell<u32>> = Rc::default();
    for root in roots {
        spawn(&mut sim, root.clone(), Rc::clone(&log), Rc::clone(&ids));
    }
    sim.run();
    Rc::try_unwrap(log).expect("all handlers done").into_inner()
}

/// Delays chosen to hit every wheel path: ready (0), tick boundaries
/// (2^17 ns), the level-0 span edge (2^25 ns), the level-1 span edge
/// (2^33 ns), and deep overflow.
fn delay_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        131_071u64..=131_073,
        1_000u64..=50_000_000,
        33_554_430u64..=33_554_434,
        8_589_934_590u64..=8_589_934_594,
        9_000_000_000u64..=70_000_000_000,
    ]
}

/// Depth-3 trees built by explicit composition (the vendored proptest has
/// no `prop_recursive`): a root whose children each carry up to two
/// grandchildren, all with boundary-hitting delays.
fn ev_strategy() -> impl Strategy<Value = Ev> {
    fn leaf() -> impl Strategy<Value = Ev> {
        delay_strategy().prop_map(|delay_ns| Ev {
            delay_ns,
            children: vec![],
        })
    }
    let mid = (delay_strategy(), proptest::collection::vec(leaf(), 0..3)).prop_map(
        |(delay_ns, children)| Ev {
            delay_ns,
            children,
        },
    );
    (delay_strategy(), proptest::collection::vec(mid, 0..3)).prop_map(
        |(delay_ns, children)| Ev {
            delay_ns,
            children,
        },
    )
}

proptest! {
    #[test]
    fn wheel_and_heap_fire_in_identical_order(
        roots in proptest::collection::vec(ev_strategy(), 1..16)
    ) {
        let wheel_log = run_program(Simulator::new(), &roots);
        let heap_log = run_program(BaselineSimulator::new(), &roots);
        prop_assert_eq!(wheel_log, heap_log);
    }
}

#[test]
fn dense_tie_storm_matches_reference() {
    // 1000 events over just 16 distinct firing times: ordering is almost
    // entirely decided by the seq tie-break.
    let roots: Vec<Ev> = (0..1000u64)
        .map(|i| Ev {
            delay_ns: (i % 16) * 131_072,
            children: if i % 97 == 0 {
                vec![Ev {
                    delay_ns: 0,
                    children: vec![],
                }]
            } else {
                vec![]
            },
        })
        .collect();
    let wheel_log = run_program(Simulator::new(), &roots);
    let heap_log = run_program(BaselineSimulator::new(), &roots);
    assert_eq!(wheel_log, heap_log);
    assert_eq!(wheel_log.len(), 1000 + 1000usize.div_ceil(97));
}

#[test]
fn self_rescheduling_chains_match_reference() {
    // Several concurrent chains, each hop picking a different wheel level.
    fn chain(step: u64) -> Ev {
        let mut node = Ev {
            delay_ns: step,
            children: vec![],
        };
        for _ in 0..20 {
            node = Ev {
                delay_ns: step,
                children: vec![node],
            };
        }
        node
    }
    let roots = vec![
        chain(1_000),          // sub-tick
        chain(200_000),        // a couple of ticks
        chain(40_000_000),     // level 1
        chain(9_000_000_000),  // overflow every hop
    ];
    let wheel_log = run_program(Simulator::new(), &roots);
    let heap_log = run_program(BaselineSimulator::new(), &roots);
    assert_eq!(wheel_log, heap_log);
}
