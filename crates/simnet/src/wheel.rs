//! Hierarchical timer wheel with exact `(time, seq)` ordering.
//!
//! The scheduler's priority queue is dominated by short timers — link
//! serialisation/propagation events in the microsecond–millisecond range and
//! TCP retransmission timers in the 200 ms–seconds range. A binary heap pays
//! `O(log n)` cache-missy sifts per operation; a timer wheel files each
//! entry into a bucket in `O(1)` and only pays ordering cost for entries
//! that share the current tick window.
//!
//! Layout (tick = 2^17 ns ≈ 131 µs):
//!
//! * **level 0** — 256 one-tick buckets covering ≈ 33.5 ms ahead,
//! * **level 1** — 256 buckets of 256 ticks each, covering ≈ 8.59 s ahead,
//! * **overflow** — a compact binary heap for anything further out
//!   (e.g. backed-off TCP RTOs, think times).
//!
//! A small *ready heap* ordered by `(time, seq)` holds entries whose tick
//! has been reached. Because every wheel/overflow entry is strictly later
//! than `cursor` and every ready entry is at or before it, the ready heap's
//! minimum is always the global minimum — `peek` is exact and cheap, and the
//! engine's deterministic tie-break (insertion `seq` within the same
//! nanosecond) is preserved bit-for-bit.
//!
//! Cascading: when the cursor crosses a 256-tick block boundary the matching
//! level-1 bucket is re-filed into level 0, and overflow entries within the
//! level-1 span are pulled in. Re-filing always goes through the same
//! `file` routine as fresh inserts, so an entry can never fire out of order
//! no matter which path it took.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of the tick size in nanoseconds (2^17 ns ≈ 131 µs).
const SHIFT0: u32 = 17;
/// log2 of the bucket count per level.
const BITS: u32 = 8;
/// Buckets per level.
const SLOTS: usize = 1 << BITS;
/// Bucket index mask.
const MASK: u64 = (SLOTS - 1) as u64;
/// Ticks covered by level 0 + level 1 together.
const L1_SPAN_TICKS: u64 = 1 << (2 * BITS);

#[inline]
fn tick_of(at: SimTime) -> u64 {
    at.as_nanos() >> SHIFT0
}

/// A compact queue entry: firing time, global insertion sequence, and the
/// arena address of the closure. Ordering is `(at, seq)`; `seq` is unique so
/// the derived lexicographic order never reaches the address fields.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) struct Entry {
    pub at: SimTime,
    pub seq: u64,
    pub slot: u32,
    pub gen: u32,
}

/// Two-level timer wheel + overflow heap + ready heap.
pub(crate) struct TimerWheel {
    /// Entries whose tick has been reached, ordered by `(at, seq)`.
    ready: BinaryHeap<Reverse<Entry>>,
    level0: Vec<Vec<Entry>>,
    level1: Vec<Vec<Entry>>,
    count0: usize,
    count1: usize,
    /// Current tick: every entry in the wheels/overflow has tick > cursor,
    /// every entry in `ready` has tick <= cursor.
    cursor: u64,
    overflow: BinaryHeap<Reverse<Entry>>,
    /// Total entries across ready + wheels + overflow.
    len: usize,
    /// Recycled drain buffer so cascades don't allocate.
    scratch: Vec<Entry>,
}

impl TimerWheel {
    pub(crate) fn new() -> Self {
        TimerWheel {
            ready: BinaryHeap::new(),
            level0: (0..SLOTS).map(|_| Vec::new()).collect(),
            level1: (0..SLOTS).map(|_| Vec::new()).collect(),
            count0: 0,
            count1: 0,
            cursor: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            scratch: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, e: Entry) {
        self.len += 1;
        self.file(e);
    }

    /// Earliest entry by `(at, seq)` without removing it.
    pub(crate) fn peek(&mut self) -> Option<Entry> {
        self.prime();
        self.ready.peek().map(|r| r.0)
    }

    /// Removes and returns the earliest entry by `(at, seq)`.
    pub(crate) fn pop(&mut self) -> Option<Entry> {
        self.prime();
        let e = self.ready.pop()?.0;
        self.len -= 1;
        Some(e)
    }

    /// Files an entry relative to the current cursor. Used for fresh pushes,
    /// cascades, and overflow drains alike, so ordering invariants hold on
    /// every path.
    fn file(&mut self, e: Entry) {
        let t = tick_of(e.at);
        if t <= self.cursor {
            self.ready.push(Reverse(e));
        } else {
            let delta = t - self.cursor;
            if delta < SLOTS as u64 {
                self.level0[(t & MASK) as usize].push(e);
                self.count0 += 1;
            } else if delta < L1_SPAN_TICKS {
                self.level1[((t >> BITS) & MASK) as usize].push(e);
                self.count1 += 1;
            } else {
                self.overflow.push(Reverse(e));
            }
        }
    }

    /// Advances the cursor until the ready heap is non-empty (or the wheel
    /// is empty). All bucket drains re-file through [`TimerWheel::file`].
    fn prime(&mut self) {
        while self.ready.is_empty() {
            if self.len == 0 {
                return;
            }
            if self.count0 == 0 && self.count1 == 0 {
                // Only far-future entries remain: jump the cursor straight
                // to the earliest overflow tick and pull its span in.
                let t = tick_of(self.overflow.peek().expect("len > 0").0.at);
                if t > self.cursor {
                    self.cursor = t;
                }
                self.drain_overflow();
                continue;
            }
            if self.count0 == 0 {
                // Nothing before the next block boundary; skip to it.
                self.cursor |= MASK;
            }
            self.cursor += 1;
            if self.cursor & MASK == 0 {
                self.cascade();
                self.drain_overflow();
            }
            let b = (self.cursor & MASK) as usize;
            if !self.level0[b].is_empty() {
                let mut scratch = std::mem::take(&mut self.scratch);
                std::mem::swap(&mut scratch, &mut self.level0[b]);
                self.count0 -= scratch.len();
                for e in scratch.drain(..) {
                    debug_assert_eq!(tick_of(e.at), self.cursor);
                    self.ready.push(Reverse(e));
                }
                self.scratch = scratch;
            }
        }
    }

    /// Re-files the level-1 bucket for the block the cursor just entered.
    fn cascade(&mut self) {
        let b = ((self.cursor >> BITS) & MASK) as usize;
        if self.level1[b].is_empty() {
            return;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        std::mem::swap(&mut scratch, &mut self.level1[b]);
        self.count1 -= scratch.len();
        for e in scratch.drain(..) {
            debug_assert!(tick_of(e.at) >= self.cursor);
            self.file(e);
        }
        self.scratch = scratch;
    }

    /// Pulls overflow entries that now fall within the wheel span. Called at
    /// every block crossing so an overflow entry is always re-filed before
    /// the cursor can reach its tick — a later-scheduled wheel entry can
    /// therefore never fire ahead of a nearer overflow entry.
    fn drain_overflow(&mut self) {
        let limit = self.cursor.saturating_add(L1_SPAN_TICKS);
        while let Some(Reverse(e)) = self.overflow.peek() {
            if tick_of(e.at) >= limit {
                break;
            }
            let e = self.overflow.pop().expect("peeked").0;
            self.file(e);
        }
    }
}
