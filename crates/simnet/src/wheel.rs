//! Hierarchical timer wheel with exact `(time, seq)` ordering and
//! batched slot dispatch.
//!
//! The scheduler's priority queue is dominated by short timers — link
//! serialisation/propagation events in the microsecond–millisecond range and
//! TCP retransmission timers in the 200 ms–seconds range. A binary heap pays
//! `O(log n)` cache-missy sifts per operation; a timer wheel files each
//! entry into a bucket in `O(1)` and only pays ordering cost for entries
//! that share the current tick window.
//!
//! Layout (tick = 2^17 ns ≈ 131 µs):
//!
//! * **level 0** — 256 one-tick buckets covering ≈ 33.5 ms ahead,
//! * **level 1** — 256 buckets of 256 ticks each, covering ≈ 8.59 s ahead,
//! * **overflow** — a compact binary heap for anything further out
//!   (e.g. backed-off TCP RTOs, think times).
//!
//! Entries whose tick has been reached live in one of two ready
//! structures:
//!
//! * the **batch** — a whole level-0 slot drained at once and sorted
//!   **once** (descending by `(time, seq)`), so dispatch pops the global
//!   minimum from the tail in `O(1)` instead of paying a heap sift per
//!   event;
//! * the **spill** — a small min-heap for entries that arrive *inside* the
//!   current tick (an event firing from the batch schedules a sub-tick
//!   follow-up, or a cascade re-files an entry at the cursor tick). These
//!   are rare relative to slot traffic and keep their `O(log s)` cost on a
//!   heap that holds only same-tick stragglers, never the whole slot.
//!
//! Dispatch compares the batch tail with the spill top and takes the
//! smaller, so exact `(time, seq)` order — including the engine's
//! deterministic insertion-`seq` tie-break — is preserved bit-for-bit.
//! Because every wheel/overflow entry is strictly later than `cursor` and
//! every batch/spill entry is at or before it, that minimum is always the
//! global minimum.
//!
//! Cascading: when the cursor crosses a 256-tick block boundary the matching
//! level-1 bucket is re-filed into level 0, and overflow entries within the
//! level-1 span are pulled in. Re-filing always goes through the same
//! `file` routine as fresh inserts, so an entry can never fire out of order
//! no matter which path it took.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of the tick size in nanoseconds (2^17 ns ≈ 131 µs).
const SHIFT0: u32 = 17;
/// log2 of the bucket count per level.
const BITS: u32 = 8;
/// Buckets per level.
const SLOTS: usize = 1 << BITS;
/// Bucket index mask.
const MASK: u64 = (SLOTS - 1) as u64;
/// Ticks covered by level 0 + level 1 together.
const L1_SPAN_TICKS: u64 = 1 << (2 * BITS);

#[inline]
fn tick_of(at: SimTime) -> u64 {
    at.as_nanos() >> SHIFT0
}

/// A compact queue entry: firing time, global insertion sequence, and the
/// arena address of the closure. Ordering is `(at, seq)`; `seq` is unique so
/// the derived lexicographic order never reaches the address fields.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) struct Entry {
    pub at: SimTime,
    pub seq: u64,
    pub slot: u32,
    pub gen: u32,
}

/// Two-level timer wheel + overflow heap + batched ready structures.
pub(crate) struct TimerWheel {
    /// The drained level-0 slot, sorted **descending** by `(at, seq)` so
    /// the earliest entry is at the tail and dispatch is a plain
    /// `Vec::pop`.
    batch: Vec<Entry>,
    /// Same-tick stragglers: entries filed at or before the cursor tick
    /// while the batch is live (re-entrant sub-tick scheduling, cascade
    /// re-files landing on the cursor tick).
    spill: BinaryHeap<Reverse<Entry>>,
    level0: Vec<Vec<Entry>>,
    level1: Vec<Vec<Entry>>,
    count0: usize,
    count1: usize,
    /// Current tick: every entry in the wheels/overflow has tick > cursor,
    /// every entry in `batch`/`spill` has tick <= cursor.
    cursor: u64,
    overflow: BinaryHeap<Reverse<Entry>>,
    /// Total entries across batch + spill + wheels + overflow.
    len: usize,
    /// Recycled drain buffer so cascades don't allocate.
    scratch: Vec<Entry>,
}

impl TimerWheel {
    pub(crate) fn new() -> Self {
        TimerWheel {
            batch: Vec::new(),
            spill: BinaryHeap::new(),
            level0: (0..SLOTS).map(|_| Vec::new()).collect(),
            level1: (0..SLOTS).map(|_| Vec::new()).collect(),
            count0: 0,
            count1: 0,
            cursor: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            scratch: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, e: Entry) {
        self.len += 1;
        self.file(e);
    }

    /// Removes and returns the earliest entry iff it fires at or before
    /// `horizon`; a later entry stays queued. Folds peek + pop into one
    /// priming pass — the engine's dispatch loop calls this once per event.
    #[inline]
    pub(crate) fn pop_due(&mut self, horizon: SimTime) -> Option<Entry> {
        self.prime();
        let from_spill = match (self.batch.last(), self.spill.peek()) {
            (Some(b), Some(Reverse(s))) => s < b,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (None, None) => return None,
        };
        let e = if from_spill {
            let e = self.spill.peek().expect("checked").0;
            if e.at > horizon {
                return None;
            }
            self.spill.pop();
            e
        } else {
            let e = *self.batch.last().expect("checked");
            if e.at > horizon {
                return None;
            }
            self.batch.pop();
            e
        };
        self.len -= 1;
        Some(e)
    }

    /// Files an entry relative to the current cursor. Used for fresh pushes,
    /// cascades, and overflow drains alike, so ordering invariants hold on
    /// every path.
    #[inline]
    fn file(&mut self, e: Entry) {
        let t = tick_of(e.at);
        if t <= self.cursor {
            self.spill.push(Reverse(e));
        } else {
            let delta = t - self.cursor;
            if delta < SLOTS as u64 {
                self.level0[(t & MASK) as usize].push(e);
                self.count0 += 1;
            } else if delta < L1_SPAN_TICKS {
                self.level1[((t >> BITS) & MASK) as usize].push(e);
                self.count1 += 1;
            } else {
                self.overflow.push(Reverse(e));
            }
        }
    }

    /// Advances the cursor until a ready entry exists (or the wheel is
    /// empty), batch-firing whole level-0 slots: each drained slot is taken
    /// wholesale and sorted once, instead of paying a heap push per entry.
    /// All bucket re-files go through [`TimerWheel::file`].
    fn prime(&mut self) {
        while self.batch.is_empty() && self.spill.is_empty() {
            if self.len == 0 {
                return;
            }
            if self.count0 == 0 && self.count1 == 0 {
                // Only far-future entries remain: jump the cursor straight
                // to the earliest overflow tick and pull its span in.
                let t = tick_of(self.overflow.peek().expect("len > 0").0.at);
                if t > self.cursor {
                    self.cursor = t;
                }
                self.drain_overflow();
                continue;
            }
            if self.count0 == 0 {
                // Nothing before the next block boundary; skip to it.
                self.cursor |= MASK;
            }
            self.cursor += 1;
            if self.cursor & MASK == 0 {
                self.cascade();
                self.drain_overflow();
            }
            let b = (self.cursor & MASK) as usize;
            if !self.level0[b].is_empty() {
                self.count0 -= self.level0[b].len();
                // Take the slot's storage wholesale (the batch is empty
                // here, so the swap recycles its capacity into the slot)
                // and pay ordering cost once for the whole slot.
                std::mem::swap(&mut self.batch, &mut self.level0[b]);
                if cfg!(debug_assertions) {
                    for e in &self.batch {
                        debug_assert_eq!(tick_of(e.at), self.cursor);
                    }
                }
                self.batch.sort_unstable_by(|a, b| b.cmp(a));
            }
        }
    }

    /// Re-files the level-1 bucket for the block the cursor just entered.
    fn cascade(&mut self) {
        let b = ((self.cursor >> BITS) & MASK) as usize;
        if self.level1[b].is_empty() {
            return;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        std::mem::swap(&mut scratch, &mut self.level1[b]);
        self.count1 -= scratch.len();
        for e in scratch.drain(..) {
            debug_assert!(tick_of(e.at) >= self.cursor);
            self.file(e);
        }
        self.scratch = scratch;
    }

    /// Pulls overflow entries that now fall within the wheel span. Called at
    /// every block crossing so an overflow entry is always re-filed before
    /// the cursor can reach its tick — a later-scheduled wheel entry can
    /// therefore never fire ahead of a nearer overflow entry.
    fn drain_overflow(&mut self) {
        let limit = self.cursor.saturating_add(L1_SPAN_TICKS);
        while let Some(Reverse(e)) = self.overflow.peek() {
            if tick_of(e.at) >= limit {
                break;
            }
            let e = self.overflow.pop().expect("peeked").0;
            self.file(e);
        }
    }
}
