//! Reference `BinaryHeap` scheduler, kept for differential testing and
//! benchmarking.
//!
//! [`BaselineSimulator`] is the straightforward engine the workspace shipped
//! with before the timer-wheel rewrite: one `Box<dyn FnOnce>` per event in a
//! `BinaryHeap`, ordered by `(time, seq)`. It is intentionally *not* used by
//! any production code path; it exists so that
//!
//! * the differential property test (`tests/wheel_vs_heap.rs`) can assert
//!   that the timer wheel fires arbitrary interleaved schedules in exactly
//!   the order this engine does, and
//! * the `engine_throughput` benchmark / F4 report section can measure the
//!   wheel's speedup against a truthful baseline rather than a guess.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

type Action = Box<dyn FnOnce(&mut BaselineSimulator)>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    action: Option<Action>,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pre-wheel `BinaryHeap` + boxed-closure discrete-event engine.
///
/// Semantics match [`crate::Simulator`] exactly: absolute/relative
/// scheduling, `(time, seq)` tie-breaks, and past-scheduling panics.
pub struct BaselineSimulator {
    now: SimTime,
    queue: BinaryHeap<Scheduled>,
    next_seq: u64,
    events_processed: u64,
}

impl Default for BaselineSimulator {
    fn default() -> Self {
        Self::new()
    }
}

impl BaselineSimulator {
    /// Creates a baseline simulator at time zero.
    pub fn new() -> Self {
        BaselineSimulator {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            events_processed: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut BaselineSimulator) + 'static,
    ) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            action: Some(Box::new(action)),
        });
    }

    /// Schedules `action` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut BaselineSimulator) + 'static,
    ) {
        self.schedule_at(self.now.saturating_add(delay), action);
    }

    /// Runs a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(mut ev) = self.queue.pop() else {
            return false;
        };
        self.now = ev.at;
        let action = ev.action.take().expect("event scheduled without action");
        self.events_processed += 1;
        action(self);
        true
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }
}
