//! The discrete-event engine.
//!
//! [`Simulator`] owns a virtual clock and a priority queue of scheduled
//! events. An event is any `FnOnce(&mut Simulator)`; components hold their
//! mutable state in `Rc<RefCell<…>>` cells captured by the closures they
//! schedule. Ties in firing time are broken by insertion order, which makes
//! runs fully deterministic.
//!
//! Internally the queue is a hierarchical timer wheel (`wheel` module) and
//! event closures live in a generation-tagged slab with free-list reuse
//! (`event` module): scheduling and firing are `O(1)` amortised and the
//! steady-state schedule→fire cycle performs no heap allocation for small
//! closures. The observable semantics — exact `(time, seq)` ordering,
//! horizon handling, stop/resume — are identical to the straightforward
//! `BinaryHeap` engine, which is retained as
//! [`crate::baseline::BaselineSimulator`] for differential tests and
//! benchmarks.

use crate::event::{EventArena, EventKey, RawEvent};
use crate::time::{SimDuration, SimTime};
use crate::wheel::{Entry, TimerWheel};

/// A deterministic, single-threaded discrete-event simulator.
///
/// ```
/// use simnet::{Simulator, SimDuration};
///
/// let mut sim = Simulator::new();
/// let mut order = Vec::new();
/// sim.schedule_in(SimDuration::from_millis(2), |_| {});
/// sim.run();
/// order.push(sim.now().as_millis());
/// assert_eq!(order, vec![2]);
/// ```
pub struct Simulator {
    now: SimTime,
    wheel: TimerWheel,
    arena: EventArena,
    next_seq: u64,
    events_processed: u64,
    horizon: SimTime,
    stopped: bool,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl Simulator {
    /// Creates a simulator at time zero with no horizon.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            wheel: TimerWheel::new(),
            arena: EventArena::default(),
            next_seq: 0,
            events_processed: 0,
            horizon: SimTime::MAX,
            stopped: false,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events currently pending (cancelled events excluded).
    pub fn pending(&self) -> usize {
        self.arena.live()
    }

    #[inline]
    fn enqueue(&mut self, at: SimTime, ev: RawEvent) -> EventKey {
        #[cold]
        #[inline(never)]
        fn past_panic(now: SimTime, at: SimTime) -> ! {
            panic!("cannot schedule into the past: now={now}, requested={at}");
        }
        if at < self.now {
            past_panic(self.now, at);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let (slot, gen) = self.arena.insert(ev);
        self.wheel.push(Entry { at, seq, slot, gen });
        EventKey { slot, gen }
    }

    /// Schedules `action` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time — scheduling into the past
    /// is always a logic error in the caller.
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Simulator) + 'static) {
        self.enqueue(at, RawEvent::new(action));
    }

    /// Schedules `action` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Simulator) + 'static,
    ) {
        self.schedule_at(self.now.saturating_add(delay), action);
    }

    /// Schedules `action` at absolute time `at` and returns a key that can
    /// later [`Simulator::cancel`] it.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule_at_keyed(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut Simulator) + 'static,
    ) -> EventKey {
        self.enqueue(at, RawEvent::new(action))
    }

    /// Schedules `action` after `delay` and returns a key that can later
    /// [`Simulator::cancel`] it.
    pub fn schedule_in_keyed(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Simulator) + 'static,
    ) -> EventKey {
        self.schedule_at_keyed(self.now.saturating_add(delay), action)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (its closure is dropped
    /// without running). A stale key — the event already fired, or was
    /// already cancelled — returns `false`; this is always safe because keys
    /// are generation-tagged.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.arena.take(key.slot, key.gen).is_some()
    }

    /// Runs a single event, advancing the clock to its firing time.
    ///
    /// Returns `false` when the queue is empty or the horizon/stop flag
    /// prevents further progress. An entry past the horizon is never
    /// removed, so hitting a `run_until` boundary leaves the queue
    /// untouched.
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        loop {
            // `pop_due` leaves an entry past the horizon queued, so hitting
            // a `run_until` boundary never disturbs the queue.
            let Some(entry) = self.wheel.pop_due(self.horizon) else {
                return false;
            };
            // A stale generation means the event was cancelled; skip it.
            let Some(ev) = self.arena.take(entry.slot, entry.gen) else {
                continue;
            };
            self.now = entry.at;
            self.events_processed += 1;
            ev.invoke(self);
            return true;
        }
    }

    /// Runs until the event queue drains (or [`Simulator::stop`] is called).
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue drains or virtual time would pass `until`.
    ///
    /// Events scheduled after `until` stay queued; the clock is advanced to
    /// `until` on return so stats sampled afterwards cover the full window.
    pub fn run_until(&mut self, until: SimTime) {
        let previous = self.horizon;
        self.horizon = until;
        while self.step() {}
        self.horizon = previous;
        if !self.stopped && self.now < until {
            self.now = until;
        }
    }

    /// Runs for `window` of virtual time from now.
    pub fn run_for(&mut self, window: SimDuration) {
        let until = self.now.saturating_add(window);
        self.run_until(until);
    }

    /// Stops the run loop after the current event completes.
    ///
    /// Pending events remain queued; a subsequent [`Simulator::run`] resumes.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Clears a previous [`Simulator::stop`] so the run loop can resume.
    pub fn resume(&mut self) {
        self.stopped = false;
    }

    /// True if [`Simulator::stop`] has been called and not cleared.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        for &ms in &[30u64, 10, 20] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_millis(ms), move |_| log.borrow_mut().push(ms));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim = Simulator::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        for i in 0..5u32 {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_millis(1), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulator::new();
        let hits: Rc<RefCell<u32>> = Rc::default();
        let h = Rc::clone(&hits);
        sim.schedule_in(SimDuration::from_millis(1), move |sim| {
            let h2 = Rc::clone(&h);
            sim.schedule_in(SimDuration::from_millis(1), move |_| {
                *h2.borrow_mut() += 1;
            });
            *h.borrow_mut() += 1;
        });
        sim.run();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(sim.now(), SimTime::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_millis(5), |sim| {
            sim.schedule_at(SimTime::from_millis(1), |_| {});
        });
        sim.run();
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut sim = Simulator::new();
        let hits: Rc<RefCell<u32>> = Rc::default();
        for ms in [5u64, 15] {
            let h = Rc::clone(&hits);
            sim.schedule_at(SimTime::from_millis(ms), move |_| *h.borrow_mut() += 1);
        }
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(*hits.borrow(), 1);
        assert_eq!(sim.now(), SimTime::from_millis(10));
        assert_eq!(sim.pending(), 1);
        sim.run();
        assert_eq!(*hits.borrow(), 2);
    }

    #[test]
    fn stop_halts_and_resume_continues() {
        let mut sim = Simulator::new();
        let hits: Rc<RefCell<u32>> = Rc::default();
        {
            let h = Rc::clone(&hits);
            sim.schedule_in(SimDuration::from_millis(1), move |sim| {
                *h.borrow_mut() += 1;
                sim.stop();
            });
        }
        {
            let h = Rc::clone(&hits);
            sim.schedule_in(SimDuration::from_millis(2), move |_| *h.borrow_mut() += 1);
        }
        sim.run();
        assert_eq!(*hits.borrow(), 1);
        assert!(sim.is_stopped());
        sim.resume();
        sim.run();
        assert_eq!(*hits.borrow(), 2);
    }

    #[test]
    fn run_for_advances_relative_window() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(3), |_| {});
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(sim.now(), SimTime::from_millis(10));
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(sim.now(), SimTime::from_millis(20));
    }

    #[test]
    fn cancel_prevents_firing_and_stale_keys_are_safe() {
        let mut sim = Simulator::new();
        let hits: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let h1 = Rc::clone(&hits);
        let k1 = sim.schedule_in_keyed(SimDuration::from_millis(1), move |_| {
            h1.borrow_mut().push("cancelled")
        });
        let h2 = Rc::clone(&hits);
        let k2 = sim.schedule_in_keyed(SimDuration::from_millis(2), move |_| {
            h2.borrow_mut().push("fired")
        });
        assert!(sim.cancel(k1));
        assert!(!sim.cancel(k1), "double-cancel is a no-op");
        sim.run();
        assert_eq!(*hits.borrow(), vec!["fired"]);
        assert!(!sim.cancel(k2), "cancelling a fired event is a no-op");
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn cancelled_slot_reuse_does_not_confuse_keys() {
        let mut sim = Simulator::new();
        let hits: Rc<RefCell<u32>> = Rc::default();
        let k1 = sim.schedule_in_keyed(SimDuration::from_millis(5), |_| {});
        assert!(sim.cancel(k1));
        // The freed slot is reused; the old key must stay stale.
        let h = Rc::clone(&hits);
        let _k2 = sim.schedule_in_keyed(SimDuration::from_millis(1), move |_| {
            *h.borrow_mut() += 1
        });
        assert!(!sim.cancel(k1));
        sim.run();
        assert_eq!(*hits.borrow(), 1);
    }

    #[test]
    fn slab_reuses_slots_across_schedule_fire_cycles() {
        let mut sim = Simulator::new();
        let depth: Rc<RefCell<u32>> = Rc::default();
        fn chain(sim: &mut Simulator, depth: Rc<RefCell<u32>>) {
            let d = *depth.borrow();
            if d >= 1000 {
                return;
            }
            *depth.borrow_mut() = d + 1;
            sim.schedule_in(SimDuration::from_micros(50), move |sim| chain(sim, depth));
        }
        chain(&mut sim, Rc::clone(&depth));
        sim.run();
        assert_eq!(*depth.borrow(), 1000);
        // 1000 sequential schedule→fire cycles must recycle one slot, not
        // allocate 1000.
        assert_eq!(sim.arena.slots_allocated(), 1);
    }

    #[test]
    fn far_future_and_near_events_interleave_correctly() {
        // Exercise level-0, level-1, and overflow paths together, including
        // ticks around the bucket-span boundaries.
        let mut sim = Simulator::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        let times_ns = [
            0u64,
            1,
            131_071,            // last ns of tick 0
            131_072,            // first ns of tick 1
            33_554_432,         // level-0 span boundary (256 ticks)
            33_554_431,
            8_589_934_592,      // level-1 span boundary (2^16 ticks)
            8_589_934_591,
            60_000_000_000,     // deep overflow (a backed-off RTO)
            9_000_000_000,
            5_000_000_000,
            1_000_000,
        ];
        for &t in &times_ns {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |_| log.borrow_mut().push(t));
        }
        sim.run();
        let mut expected = times_ns.to_vec();
        expected.sort_unstable();
        assert_eq!(*log.borrow(), expected);
    }

    #[test]
    fn events_scheduled_from_inside_events_keep_tie_order() {
        // A fired event schedules a same-time event; it must run after any
        // previously queued same-time event (larger seq).
        let mut sim = Simulator::new();
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let at = SimTime::from_millis(7);
        {
            let log = Rc::clone(&log);
            sim.schedule_at(at, move |sim| {
                log.borrow_mut().push("first");
                let log2 = Rc::clone(&log);
                sim.schedule_at(at, move |_| log2.borrow_mut().push("nested"));
            });
        }
        {
            let log = Rc::clone(&log);
            sim.schedule_at(at, move |_| log.borrow_mut().push("second"));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["first", "second", "nested"]);
    }

    #[test]
    fn large_closures_fall_back_to_boxing() {
        let mut sim = Simulator::new();
        let log: Rc<RefCell<Vec<u8>>> = Rc::default();
        let big = [7u8; 128]; // capture larger than the inline slot
        let l = Rc::clone(&log);
        sim.schedule_in(SimDuration::from_millis(1), move |_| {
            l.borrow_mut().extend_from_slice(&big[..2])
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![7, 7]);
    }

    #[test]
    fn unfired_events_are_dropped_with_the_simulator() {
        let drops: Rc<RefCell<u32>> = Rc::default();
        struct Bump(Rc<RefCell<u32>>);
        impl Drop for Bump {
            fn drop(&mut self) {
                *self.0.borrow_mut() += 1;
            }
        }
        {
            let mut sim = Simulator::new();
            let b1 = Bump(Rc::clone(&drops));
            let b2 = Bump(Rc::clone(&drops));
            sim.schedule_in(SimDuration::from_millis(1), move |_| drop(b1));
            sim.schedule_in(SimDuration::from_secs(100), move |_| drop(b2));
            sim.run_until(SimTime::from_millis(10));
            assert_eq!(*drops.borrow(), 1, "fired event consumed its capture");
        }
        assert_eq!(*drops.borrow(), 2, "pending event dropped with the sim");
    }
}
