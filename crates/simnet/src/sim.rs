//! The discrete-event engine.
//!
//! [`Simulator`] owns a virtual clock and a priority queue of scheduled
//! events. An event is any `FnOnce(&mut Simulator)`; components hold their
//! mutable state in `Rc<RefCell<…>>` cells captured by the closures they
//! schedule. Ties in firing time are broken by insertion order, which makes
//! runs fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A boxed event action.
type Action = Box<dyn FnOnce(&mut Simulator)>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    action: Option<Action>,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, single-threaded discrete-event simulator.
///
/// ```
/// use simnet::{Simulator, SimDuration};
///
/// let mut sim = Simulator::new();
/// let mut order = Vec::new();
/// sim.schedule_in(SimDuration::from_millis(2), |_| {});
/// sim.run();
/// order.push(sim.now().as_millis());
/// assert_eq!(order, vec![2]);
/// ```
pub struct Simulator {
    now: SimTime,
    queue: BinaryHeap<Scheduled>,
    next_seq: u64,
    events_processed: u64,
    horizon: SimTime,
    stopped: bool,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl Simulator {
    /// Creates a simulator at time zero with no horizon.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            events_processed: 0,
            horizon: SimTime::MAX,
            stopped: false,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time — scheduling into the past
    /// is always a logic error in the caller.
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Simulator) + 'static) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            action: Some(Box::new(action)),
        });
    }

    /// Schedules `action` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Simulator) + 'static,
    ) {
        self.schedule_at(self.now.saturating_add(delay), action);
    }

    /// Runs a single event, advancing the clock to its firing time.
    ///
    /// Returns `false` when the queue is empty or the horizon/stop flag
    /// prevents further progress.
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        let Some(mut ev) = self.queue.pop() else {
            return false;
        };
        if ev.at > self.horizon {
            // Leave the event unpopped semantics: horizon reached. Push back
            // so a later `run_until` with a larger horizon still sees it.
            self.queue.push(Scheduled {
                action: ev.action.take(),
                ..ev
            });
            return false;
        }
        self.now = ev.at;
        let action = ev.action.take().expect("event scheduled without action");
        self.events_processed += 1;
        action(self);
        true
    }

    /// Runs until the event queue drains (or [`Simulator::stop`] is called).
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue drains or virtual time would pass `until`.
    ///
    /// Events scheduled after `until` stay queued; the clock is advanced to
    /// `until` on return so stats sampled afterwards cover the full window.
    pub fn run_until(&mut self, until: SimTime) {
        let previous = self.horizon;
        self.horizon = until;
        while self.step() {}
        self.horizon = previous;
        if !self.stopped && self.now < until {
            self.now = until;
        }
    }

    /// Runs for `window` of virtual time from now.
    pub fn run_for(&mut self, window: SimDuration) {
        let until = self.now.saturating_add(window);
        self.run_until(until);
    }

    /// Stops the run loop after the current event completes.
    ///
    /// Pending events remain queued; a subsequent [`Simulator::run`] resumes.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Clears a previous [`Simulator::stop`] so the run loop can resume.
    pub fn resume(&mut self) {
        self.stopped = false;
    }

    /// True if [`Simulator::stop`] has been called and not cleared.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        for &ms in &[30u64, 10, 20] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_millis(ms), move |_| log.borrow_mut().push(ms));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim = Simulator::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        for i in 0..5u32 {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_millis(1), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulator::new();
        let hits: Rc<RefCell<u32>> = Rc::default();
        let h = Rc::clone(&hits);
        sim.schedule_in(SimDuration::from_millis(1), move |sim| {
            let h2 = Rc::clone(&h);
            sim.schedule_in(SimDuration::from_millis(1), move |_| {
                *h2.borrow_mut() += 1;
            });
            *h.borrow_mut() += 1;
        });
        sim.run();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(sim.now(), SimTime::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_millis(5), |sim| {
            sim.schedule_at(SimTime::from_millis(1), |_| {});
        });
        sim.run();
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut sim = Simulator::new();
        let hits: Rc<RefCell<u32>> = Rc::default();
        for ms in [5u64, 15] {
            let h = Rc::clone(&hits);
            sim.schedule_at(SimTime::from_millis(ms), move |_| *h.borrow_mut() += 1);
        }
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(*hits.borrow(), 1);
        assert_eq!(sim.now(), SimTime::from_millis(10));
        assert_eq!(sim.pending(), 1);
        sim.run();
        assert_eq!(*hits.borrow(), 2);
    }

    #[test]
    fn stop_halts_and_resume_continues() {
        let mut sim = Simulator::new();
        let hits: Rc<RefCell<u32>> = Rc::default();
        {
            let h = Rc::clone(&hits);
            sim.schedule_in(SimDuration::from_millis(1), move |sim| {
                *h.borrow_mut() += 1;
                sim.stop();
            });
        }
        {
            let h = Rc::clone(&hits);
            sim.schedule_in(SimDuration::from_millis(2), move |_| *h.borrow_mut() += 1);
        }
        sim.run();
        assert_eq!(*hits.borrow(), 1);
        assert!(sim.is_stopped());
        sim.resume();
        sim.run();
        assert_eq!(*hits.borrow(), 2);
    }

    #[test]
    fn run_for_advances_relative_window() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_millis(3), |_| {});
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(sim.now(), SimTime::from_millis(10));
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(sim.now(), SimTime::from_millis(20));
    }
}
