#![warn(missing_docs)]
//! # simnet — deterministic discrete-event network simulation substrate
//!
//! `simnet` is the foundation of the `mcommerce` workspace: a small,
//! deterministic discrete-event simulator with byte-accurate link models,
//! seeded randomness, and measurement primitives. Every other subsystem in
//! the reproduction of *"A System Model for Mobile Commerce"* (Lee, Hu &
//! Yeh, ICDCSW'03) — the wireless channel models, the IP/Mobile-IP stack,
//! the TCP variants, and the end-to-end six-component system — runs on top
//! of this crate.
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** A simulation seeded with the same value produces the
//!    same event sequence bit-for-bit. All randomness flows through
//!    [`rng::rng_for`], which derives independent streams from a root seed.
//! 2. **Byte accuracy.** Links serialise messages at a configured bandwidth
//!    and charge propagation delay, queueing delay and drop-tail losses the
//!    way a real FIFO bottleneck does.
//! 3. **Measurability.** [`stats`] provides counters, histograms and
//!    time-weighted gauges used by every experiment in `EXPERIMENTS.md`.
//!
//! ## Quickstart
//!
//! ```
//! use simnet::{Simulator, SimDuration};
//!
//! let mut sim = Simulator::new();
//! sim.schedule_in(SimDuration::from_millis(5), |sim| {
//!     assert_eq!(sim.now().as_millis(), 5);
//! });
//! sim.run();
//! assert_eq!(sim.events_processed(), 1);
//! ```

pub mod baseline;
pub mod contend;
mod event;
pub mod link;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;
mod wheel;

pub use baseline::BaselineSimulator;
pub use event::EventKey;
pub use obs::metrics;
pub use link::{Link, LinkParams, LossModel, Wire};
pub use sim::Simulator;
pub use time::{SimDuration, SimTime};
