//! Measurement primitives used by every experiment.
//!
//! All types use interior mutability (`Cell`/`RefCell`) so they can be
//! shared via `Rc` between the component being measured and the harness
//! reading results — the same pattern the simulator itself uses.

use std::cell::{Cell, RefCell};
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
///
/// ```
/// let c = simnet::stats::Counter::new();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Counter(Cell<u64>);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(Cell::new(0))
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().wrapping_add(n));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.0.replace(0)
    }
}

/// Summary statistics over a set of `f64` samples.
///
/// Percentiles use linear interpolation between closest ranks (the R-7
/// scheme), so e.g. the median of `[1, 3]` is `2.0`, not either sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample (0 if empty).
    pub min: f64,
    /// Largest sample (0 if empty).
    pub max: f64,
    /// Arithmetic mean (0 if empty).
    pub mean: f64,
    /// Population standard deviation (0 if empty).
    pub stddev: f64,
    /// Median (0 if empty).
    pub p50: f64,
    /// 90th percentile (0 if empty).
    pub p90: f64,
    /// 99th percentile (0 if empty).
    pub p99: f64,
}

impl Summary {
    fn empty() -> Summary {
        Summary {
            count: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            stddev: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}",
            self.count, self.mean, self.stddev, self.min, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// A reservoir of raw samples with exact quantiles.
///
/// Experiments in this workspace are laptop-scale (≤ millions of samples),
/// so exact quantiles from a sorted copy beat sketch data structures on
/// both simplicity and fidelity.
///
/// ```
/// let s = simnet::stats::Sampler::new();
/// for v in [1.0, 2.0, 3.0, 4.0] { s.record(v); }
/// let sum = s.summary();
/// assert_eq!(sum.count, 4);
/// assert_eq!(sum.mean, 2.5);
/// ```
#[derive(Debug, Default)]
pub struct Sampler {
    samples: RefCell<Vec<f64>>,
}

impl Sampler {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN sample is always an upstream bug
    /// and poisons every quantile.
    pub fn record(&self, value: f64) {
        assert!(!value.is_nan(), "refusing to record NaN sample");
        self.samples.borrow_mut().push(value);
    }

    /// Records a duration in seconds.
    pub fn record_duration(&self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.borrow().len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the raw samples, in recording order.
    pub fn to_vec(&self) -> Vec<f64> {
        self.samples.borrow().clone()
    }

    /// Computes summary statistics over all recorded samples.
    pub fn summary(&self) -> Summary {
        let samples = self.samples.borrow();
        if samples.is_empty() {
            return Summary::empty();
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN by construction"));
        let count = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let mean = sum / count as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        // Linear interpolation between closest ranks (the R-7 / NumPy
        // default). Rounding the rank instead is subtly wrong at small
        // counts: the median of two samples would come back as the max.
        let q = |p: f64| -> f64 {
            let rank = (count as f64 - 1.0) * p;
            let lo = rank.floor() as usize;
            let hi = (lo + 1).min(count - 1);
            let frac = rank - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        };
        Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            stddev: var.sqrt(),
            p50: q(0.50),
            p90: q(0.90),
            p99: q(0.99),
        }
    }
}

/// Measures goodput: bytes accumulated over a window of simulated time.
#[derive(Debug, Default)]
pub struct Throughput {
    bytes: Cell<u64>,
    started: Cell<Option<SimTime>>,
    last: Cell<Option<SimTime>>,
}

impl Throughput {
    /// Creates an idle meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts `bytes` arriving at time `now`.
    pub fn record(&self, now: SimTime, bytes: u64) {
        if self.started.get().is_none() {
            self.started.set(Some(now));
        }
        self.last.set(Some(now));
        self.bytes.set(self.bytes.get() + bytes);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Mean goodput in bits per second between the first and last sample,
    /// or between the first sample and `until` if given. Returns 0 before
    /// two distinct time points exist.
    pub fn bits_per_sec(&self, until: Option<SimTime>) -> f64 {
        let (Some(start), Some(last)) = (self.started.get(), self.last.get()) else {
            return 0.0;
        };
        let end = until.unwrap_or(last);
        let window = end.since(start).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        (self.bytes.get() as f64 * 8.0) / window
    }
}

/// A time-weighted average of a piecewise-constant signal (queue depth,
/// window size, battery level…).
#[derive(Debug)]
pub struct TimeWeighted {
    value: Cell<f64>,
    since: Cell<SimTime>,
    weighted_sum: Cell<f64>,
    origin: Cell<SimTime>,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new(0.0)
    }
}

impl TimeWeighted {
    /// Starts tracking at time zero with the given initial value.
    pub fn new(initial: f64) -> Self {
        TimeWeighted {
            value: Cell::new(initial),
            since: Cell::new(SimTime::ZERO),
            weighted_sum: Cell::new(0.0),
            origin: Cell::new(SimTime::ZERO),
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    pub fn set(&self, now: SimTime, value: f64) {
        let dt = now.since(self.since.get()).as_secs_f64();
        self.weighted_sum
            .set(self.weighted_sum.get() + self.value.get() * dt);
        self.value.set(value);
        self.since.set(now);
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.value.get()
    }

    /// The time-weighted mean of the signal from the origin to `now`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let window = now.since(self.origin.get()).as_secs_f64();
        if window <= 0.0 {
            return self.value.get();
        }
        let tail = now.since(self.since.get()).as_secs_f64();
        (self.weighted_sum.get() + self.value.get() * tail) / window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn sampler_summary_exact() {
        let s = Sampler::new();
        for v in 1..=100 {
            s.record(v as f64);
        }
        let sum = s.summary();
        assert_eq!(sum.count, 100);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 100.0);
        assert!((sum.mean - 50.5).abs() < 1e-9);
        assert!((sum.p50 - 50.0).abs() <= 1.0);
        assert!((sum.p90 - 90.0).abs() <= 1.0);
        assert!((sum.p99 - 99.0).abs() <= 1.0);
    }

    #[test]
    fn median_of_two_samples_interpolates() {
        // Regression: rank rounding used to return the max here.
        let s = Sampler::new();
        s.record(1.0);
        s.record(3.0);
        let sum = s.summary();
        assert_eq!(sum.p50, 2.0);
        assert!((sum.p90 - 2.8).abs() < 1e-9);
        assert!((sum.p99 - 2.98).abs() < 1e-9);
    }

    #[test]
    fn single_sample_percentiles_are_the_sample() {
        let s = Sampler::new();
        s.record(7.5);
        let sum = s.summary();
        assert_eq!(sum.p50, 7.5);
        assert_eq!(sum.p90, 7.5);
        assert_eq!(sum.p99, 7.5);
    }

    #[test]
    fn tiny_count_percentiles_interpolate() {
        // Three samples: p50 lands exactly on the middle one, p90 sits
        // 80% of the way between the 2nd and 3rd.
        let s = Sampler::new();
        for v in [10.0, 20.0, 30.0] {
            s.record(v);
        }
        let sum = s.summary();
        assert_eq!(sum.p50, 20.0);
        assert!((sum.p90 - 28.0).abs() < 1e-9);
    }

    #[test]
    fn empty_sampler_is_zeroes() {
        let s = Sampler::new();
        assert!(s.is_empty());
        let sum = s.summary();
        assert_eq!(sum.count, 0);
        assert_eq!(sum.mean, 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_panics() {
        Sampler::new().record(f64::NAN);
    }

    #[test]
    fn throughput_window() {
        let t = Throughput::new();
        t.record(SimTime::from_secs(1), 1000);
        t.record(SimTime::from_secs(2), 1000);
        // 2000 bytes over 1 s window = 16 kbps
        assert!((t.bits_per_sec(None) - 16_000.0).abs() < 1e-6);
        // over an explicit 4 s window (1..=5): 2000 B / 4 s = 4 kbps
        assert!((t.bits_per_sec(Some(SimTime::from_secs(5))) - 4_000.0).abs() < 1e-6);
    }

    #[test]
    fn throughput_no_samples_is_zero() {
        let t = Throughput::new();
        assert_eq!(t.bits_per_sec(None), 0.0);
    }

    #[test]
    fn time_weighted_mean() {
        let g = TimeWeighted::new(0.0);
        g.set(SimTime::from_secs(1), 10.0); // value 0 for 1 s
        g.set(SimTime::from_secs(3), 0.0); // value 10 for 2 s
                                           // mean over [0, 4] = (0*1 + 10*2 + 0*1)/4 = 5
        assert!((g.mean(SimTime::from_secs(4)) - 5.0).abs() < 1e-9);
        assert_eq!(g.current(), 0.0);
    }

    #[test]
    fn summary_display_contains_fields() {
        let s = Sampler::new();
        s.record(1.0);
        let text = s.summary().to_string();
        assert!(text.contains("n=1"));
        assert!(text.contains("mean=1.000"));
    }
}
