//! Slab storage for scheduled events.
//!
//! The hot schedule→fire cycle of a discrete-event simulation allocates and
//! frees one closure per event. A naive `Box<dyn FnOnce>` pays a heap
//! round-trip every time. [`EventArena`] instead keeps a slab of fixed-size
//! slots with a free list: firing an event returns its slot to the free list
//! and the next `schedule_*` call reuses it, so steady-state simulation does
//! not touch the allocator at all for closures up to [`INLINE_BYTES`] bytes
//! (larger captures fall back to a single `Box`, still slab-tracked).
//!
//! Slots are generation-tagged: an [`EventKey`] names `(slot, generation)`,
//! and a key whose generation no longer matches is simply stale — cancelling
//! or firing through it is a no-op. That makes cancellation safe even when
//! the slot has been recycled for an unrelated event.

use std::marker::PhantomData;
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};

use crate::sim::Simulator;

/// Number of inline capture bytes stored directly in a slot.
///
/// 32 bytes fits the common captures in this workspace: an `Rc` or two plus
/// a couple of scalars. Bigger closures are boxed, but still recycle their
/// slot.
pub(crate) const INLINE_BYTES: usize = 32;
const INLINE_WORDS: usize = INLINE_BYTES / size_of::<usize>();

/// A type-erased `FnOnce(&mut Simulator)` stored inline when small enough.
pub(crate) struct RawEvent {
    buf: [MaybeUninit<usize>; INLINE_WORDS],
    call: unsafe fn(*mut u8, &mut Simulator),
    drop_fn: unsafe fn(*mut u8),
    // Captured closures may hold `Rc`s; keep RawEvent !Send + !Sync.
    _not_send: PhantomData<*mut ()>,
}

unsafe fn call_inline<F: FnOnce(&mut Simulator)>(p: *mut u8, sim: &mut Simulator) {
    let f = unsafe { p.cast::<F>().read() };
    f(sim)
}

unsafe fn drop_inline<F>(p: *mut u8) {
    unsafe { p.cast::<F>().drop_in_place() }
}

unsafe fn call_boxed<F: FnOnce(&mut Simulator)>(p: *mut u8, sim: &mut Simulator) {
    let b = unsafe { Box::from_raw(p.cast::<*mut F>().read()) };
    b(sim)
}

unsafe fn drop_boxed<F>(p: *mut u8) {
    drop(unsafe { Box::from_raw(p.cast::<*mut F>().read()) })
}

impl RawEvent {
    #[inline]
    pub(crate) fn new<F: FnOnce(&mut Simulator) + 'static>(f: F) -> Self {
        let mut buf = [MaybeUninit::<usize>::uninit(); INLINE_WORDS];
        if size_of::<F>() <= INLINE_BYTES && align_of::<F>() <= align_of::<usize>() {
            // SAFETY: the capture fits and the buffer is usize-aligned,
            // which satisfies F's (checked) alignment.
            unsafe { buf.as_mut_ptr().cast::<F>().write(f) };
            RawEvent {
                buf,
                call: call_inline::<F>,
                drop_fn: drop_inline::<F>,
                _not_send: PhantomData,
            }
        } else {
            let p = Box::into_raw(Box::new(f));
            // SAFETY: a thin pointer always fits in the buffer.
            unsafe { buf.as_mut_ptr().cast::<*mut F>().write(p) };
            RawEvent {
                buf,
                call: call_boxed::<F>,
                drop_fn: drop_boxed::<F>,
                _not_send: PhantomData,
            }
        }
    }

    /// Consumes the event and runs the stored closure.
    #[inline]
    pub(crate) fn invoke(self, sim: &mut Simulator) {
        // The closure is moved out by `call`; suppress the Drop impl so the
        // capture is not dropped twice.
        let mut me = ManuallyDrop::new(self);
        // SAFETY: `buf` holds a live capture matching `call`'s type, written
        // exactly once in `new` and consumed exactly once here.
        unsafe { (me.call)(me.buf.as_mut_ptr().cast::<u8>(), sim) }
    }
}

impl Drop for RawEvent {
    fn drop(&mut self) {
        // Runs only for events that were never invoked (e.g. cancelled or
        // still pending when the simulator is dropped).
        // SAFETY: `buf` still holds the live capture written in `new`.
        unsafe { (self.drop_fn)(self.buf.as_mut_ptr().cast::<u8>()) }
    }
}

/// Handle to a cancellable scheduled event.
///
/// Returned by [`Simulator::schedule_at_keyed`] and
/// [`Simulator::schedule_in_keyed`]; pass it to [`Simulator::cancel`]. Keys
/// are generation-tagged: once the event has fired (or been cancelled) the
/// key goes stale and cancelling it again is a harmless no-op, even if the
/// underlying slot has been reused for another event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventKey {
    pub(crate) slot: u32,
    pub(crate) gen: u32,
}

/// Sentinel for "no free slot" in the intrusive free list.
const FREE_NONE: u32 = u32::MAX;

/// A slot's payload: a live event when the slot is occupied (odd
/// generation), or the intrusive free-list link when vacant (even
/// generation). The generation's low bit *is* the occupancy flag, so no
/// separate discriminant or free vector is touched on the hot path.
union SlotBody {
    event: ManuallyDrop<RawEvent>,
    next_free: u32,
}

/// One cache line per slot: the 56-byte payload would otherwise straddle
/// lines every other slot, doubling the memory traffic of the hot
/// schedule→fire cycle.
#[repr(align(64))]
struct Slot {
    /// Odd ⇒ occupied, even ⇒ vacant. Bumped on every transition, so a
    /// key whose generation no longer matches is stale.
    gen: u32,
    body: SlotBody,
}

/// Generation-tagged slab of pending events with intrusive free-list slot
/// reuse: the schedule→fire cycle touches exactly one slot (plus the free
/// head), with no side allocations.
pub(crate) struct EventArena {
    slots: Vec<Slot>,
    /// Head of the intrusive free list (`FREE_NONE` when empty).
    free_head: u32,
    live: usize,
}

impl Default for EventArena {
    fn default() -> Self {
        EventArena {
            slots: Vec::new(),
            free_head: FREE_NONE,
            live: 0,
        }
    }
}

impl EventArena {
    /// Stores an event, returning its `(slot, generation)` address.
    #[inline]
    pub(crate) fn insert(&mut self, ev: RawEvent) -> (u32, u32) {
        self.live += 1;
        if self.free_head != FREE_NONE {
            let idx = self.free_head;
            let s = &mut self.slots[idx as usize];
            debug_assert_eq!(s.gen & 1, 0, "free-listed slot must be vacant");
            // SAFETY: an even generation means the slot is vacant, so the
            // body holds the free-list link written when it was vacated.
            self.free_head = unsafe { s.body.next_free };
            s.gen = s.gen.wrapping_add(1); // now odd: occupied
            s.body.event = ManuallyDrop::new(ev);
            (idx, s.gen)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("more than 2^32 pending events");
            self.slots.push(Slot {
                gen: 1,
                body: SlotBody {
                    event: ManuallyDrop::new(ev),
                },
            });
            (idx, 1)
        }
    }

    /// Removes and returns the event at `(slot, gen)`.
    ///
    /// Returns `None` when the address is stale (already fired or
    /// cancelled); the generation bump on success makes any outstanding
    /// copies of the address stale in turn.
    #[inline]
    pub(crate) fn take(&mut self, slot: u32, gen: u32) -> Option<RawEvent> {
        let s = self.slots.get_mut(slot as usize)?;
        // Handed-out generations are always odd, so a vacant slot (even
        // generation) can never match.
        if s.gen != gen {
            return None;
        }
        // SAFETY: the generation matched an occupied slot, so the body
        // holds the live event written by `insert`; it is read exactly
        // once because the generation bump below invalidates the address.
        let ev = unsafe { ManuallyDrop::take(&mut s.body.event) };
        s.gen = s.gen.wrapping_add(1); // now even: vacant
        s.body.next_free = self.free_head;
        self.free_head = slot;
        self.live -= 1;
        Some(ev)
    }

    /// Number of live (schedulable, uncancelled) events.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (capacity high-water mark).
    #[cfg(test)]
    pub(crate) fn slots_allocated(&self) -> usize {
        self.slots.len()
    }
}

impl Drop for EventArena {
    fn drop(&mut self) {
        for s in &mut self.slots {
            if s.gen & 1 == 1 {
                // SAFETY: odd generation ⇒ the body holds a live event
                // that was never fired or cancelled; drop its capture.
                unsafe { ManuallyDrop::drop(&mut s.body.event) }
            }
        }
    }
}
