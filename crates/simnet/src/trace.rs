//! Lightweight event tracing for debugging and assertion-writing.
//!
//! A [`Trace`] is a bounded ring buffer of `(time, category, message)`
//! records. Tests use it to assert that protocol events happened in the
//! right order without coupling to internal state; examples use it to
//! narrate a run.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: SimTime,
    /// Component-chosen category, e.g. `"tcp"`, `"mobileip"`, `"wap"`.
    pub category: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.category, self.message)
    }
}

/// A shared, bounded trace buffer.
///
/// ```
/// use simnet::{trace::Trace, SimTime};
/// let trace = Trace::bounded(8);
/// trace.log(SimTime::from_millis(1), "tcp", "SYN sent");
/// assert_eq!(trace.len(), 1);
/// assert!(trace.contains("tcp", "SYN"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    inner: Rc<RefCell<TraceInner>>,
}

#[derive(Debug, Default)]
struct TraceInner {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace buffer keeping at most `capacity` most-recent events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            inner: Rc::new(RefCell::new(TraceInner {
                events: VecDeque::with_capacity(capacity.min(1024)),
                capacity,
                dropped: 0,
            })),
        }
    }

    /// Creates a generously sized trace for tests (64k events).
    pub fn for_test() -> Self {
        Self::bounded(65_536)
    }

    /// Appends an event, evicting the oldest if the buffer is full.
    pub fn log(&self, at: SimTime, category: &'static str, message: impl Into<String>) {
        let mut inner = self.inner.borrow_mut();
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(TraceEvent {
            at,
            category,
            message: message.into(),
        });
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// A snapshot of the buffered events in order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.iter().cloned().collect()
    }

    /// True if any buffered event in `category` contains `needle`.
    pub fn contains(&self, category: &str, needle: &str) -> bool {
        self.inner
            .borrow()
            .events
            .iter()
            .any(|e| e.category == category && e.message.contains(needle))
    }

    /// Count of buffered events in `category` containing `needle`.
    pub fn count(&self, category: &str, needle: &str) -> usize {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.category == category && e.message.contains(needle))
            .count()
    }

    /// Clears all buffered events (the dropped counter is kept).
    pub fn clear(&self) {
        self.inner.borrow_mut().events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_and_query() {
        let t = Trace::bounded(4);
        t.log(SimTime::from_millis(1), "tcp", "SYN");
        t.log(SimTime::from_millis(2), "tcp", "SYN-ACK");
        t.log(SimTime::from_millis(3), "wap", "GET /");
        assert_eq!(t.len(), 3);
        assert!(t.contains("tcp", "SYN"));
        assert_eq!(t.count("tcp", "SYN"), 2); // "SYN-ACK" contains "SYN"
        assert!(!t.contains("wap", "SYN"));
    }

    #[test]
    fn eviction_keeps_most_recent() {
        let t = Trace::bounded(2);
        for i in 0..5 {
            t.log(SimTime::from_millis(i), "x", format!("e{i}"));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let snap = t.snapshot();
        assert_eq!(snap[0].message, "e3");
        assert_eq!(snap[1].message, "e4");
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Trace::bounded(8);
        let t2 = t.clone();
        t.log(SimTime::ZERO, "a", "hello");
        assert_eq!(t2.len(), 1);
    }

    #[test]
    fn display_formats_event() {
        let t = Trace::bounded(1);
        t.log(SimTime::from_millis(5), "tcp", "RTO");
        let s = t.snapshot()[0].to_string();
        assert!(s.contains("tcp"));
        assert!(s.contains("RTO"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        Trace::bounded(0);
    }
}
