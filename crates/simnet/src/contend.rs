//! Contention primitives for shared-world simulation.
//!
//! A shared world lets many stations queue on the same physical
//! resources — a cell's airtime, a WAP gateway's transcoder, a host
//! computer's CPU. The primitives here model each such resource as a
//! deterministic **first-come-first-served single server** and give the
//! world's event loop a totally ordered queue to drain:
//!
//! * [`FcfsServer`] — a work-conserving single server characterised
//!   entirely by the instant it next falls idle. Admitting a job at its
//!   arrival time yields the deterministic FCFS start time; the wait is
//!   `start − arrival`. A zero-length job never touches the server, so
//!   an uncontended world (one user, or no overlap) adds *exactly* zero
//!   time — the invariant the one-user-equivalence property relies on.
//! * [`DetQueue`] — a min-heap of `(time_ns, id)` keys. Ties on time
//!   break on the id (for the fleet engine: the global user index), so
//!   the pop order is a pure function of the pushed set — never of heap
//!   internals, insertion order, or thread scheduling.
//!
//! Everything is integer nanoseconds; no wall clock, no randomness.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic FCFS single-server resource.
///
/// The server is fully described by `free_at_ns`, the instant the work
/// already admitted completes. Jobs are admitted in the order the event
/// loop presents them — which the loop keeps deterministic via
/// [`DetQueue`] — and each admission returns when the job actually
/// starts.
#[derive(Debug, Clone, Default)]
pub struct FcfsServer {
    free_at_ns: u64,
    busy_ns: u64,
    jobs: u64,
    waited_jobs: u64,
}

impl FcfsServer {
    /// A server that has never served anything (idle since t = 0).
    pub fn new() -> Self {
        FcfsServer::default()
    }

    /// Admits a job arriving at `arrival_ns` needing `service_ns` of
    /// server time; returns the wait (start − arrival, ≥ 0) the job
    /// suffered behind earlier admissions.
    ///
    /// A `service_ns` of zero is a no-op: the job neither waits nor
    /// occupies the server, so resources a transaction does not touch
    /// (e.g. the host, on a gateway cache hit) contribute nothing.
    pub fn admit(&mut self, arrival_ns: u64, service_ns: u64) -> u64 {
        if service_ns == 0 {
            return 0;
        }
        let start = arrival_ns.max(self.free_at_ns);
        self.free_at_ns = start.saturating_add(service_ns);
        self.busy_ns = self.busy_ns.saturating_add(service_ns);
        self.jobs += 1;
        let wait = start - arrival_ns;
        if wait > 0 {
            self.waited_jobs += 1;
        }
        wait
    }

    /// The instant the server next falls idle.
    pub fn free_at_ns(&self) -> u64 {
        self.free_at_ns
    }

    /// Total service time admitted so far, nanoseconds.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Jobs admitted (zero-service jobs are not counted).
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Jobs that found the server busy and had to wait.
    pub fn waited_jobs(&self) -> u64 {
        self.waited_jobs
    }
}

/// A deterministic event queue over `(time_ns, id)` keys.
///
/// Pops ascend by time, then by id — a total order, so two runs that
/// push the same set of keys pop them identically regardless of push
/// order. The fleet engine keys events by the owning user's global
/// index, which is unique per outstanding event.
#[derive(Debug, Default)]
pub struct DetQueue {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
}

impl DetQueue {
    /// An empty queue.
    pub fn new() -> Self {
        DetQueue::default()
    }

    /// Schedules `id` to run at `time_ns`.
    pub fn push(&mut self, time_ns: u64, id: u64) {
        self.heap.push(Reverse((time_ns, id)));
    }

    /// Removes and returns the earliest `(time_ns, id)`; ties on time
    /// resolve to the smallest id.
    pub fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap.pop().map(|Reverse(key)| key)
    }

    /// Events still scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_serializes_overlapping_jobs() {
        let mut s = FcfsServer::new();
        assert_eq!(s.admit(0, 100), 0, "idle server starts immediately");
        assert_eq!(s.admit(10, 50), 90, "arrives mid-service, waits for the rest");
        assert_eq!(s.free_at_ns(), 150);
        assert_eq!(s.admit(500, 10), 0, "late arrival finds the server idle");
        assert_eq!(s.jobs(), 3);
        assert_eq!(s.waited_jobs(), 1);
        assert_eq!(s.busy_ns(), 160);
    }

    #[test]
    fn zero_service_jobs_are_invisible() {
        let mut s = FcfsServer::new();
        s.admit(0, 100);
        assert_eq!(s.admit(10, 0), 0, "zero-length job never waits");
        assert_eq!(s.free_at_ns(), 100, "…and never occupies the server");
        assert_eq!(s.jobs(), 1);
    }

    #[test]
    fn queue_pops_ascend_by_time_then_id() {
        let mut q = DetQueue::new();
        q.push(50, 2);
        q.push(10, 9);
        q.push(50, 1);
        q.push(10, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, 3), (10, 9), (50, 1), (50, 2)]);
        assert!(q.is_empty());
    }

    #[test]
    fn queue_order_is_push_order_independent() {
        let keys = [(5u64, 1u64), (5, 2), (1, 7), (9, 0), (1, 2)];
        let mut a = DetQueue::new();
        for (t, id) in keys {
            a.push(t, id);
        }
        let mut b = DetQueue::new();
        for (t, id) in keys.iter().rev() {
            b.push(*t, *id);
        }
        let pa: Vec<_> = std::iter::from_fn(|| a.pop()).collect();
        let pb: Vec<_> = std::iter::from_fn(|| b.pop()).collect();
        assert_eq!(pa, pb);
    }
}
