//! Deterministic random-stream derivation.
//!
//! Experiments in this workspace take one root seed. Every stochastic
//! component (a link's loss process, a workload generator, a mobility walk)
//! derives its own independent stream with [`rng_for`], keyed by a stable
//! label. Adding a new component therefore never perturbs the randomness
//! seen by existing ones — the property that makes A/B comparisons between
//! system variants meaningful.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a, used to fold a stream label into the root seed.
///
/// Cryptographic quality is irrelevant here; stability across runs and
/// platforms is what matters.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Derives a deterministic RNG for the stream `label` under `root_seed`.
///
/// Identical `(root_seed, label)` pairs always yield identical streams;
/// distinct labels yield statistically independent streams.
///
/// ```
/// use rand::RngExt;
/// let mut a = simnet::rng::rng_for(7, "link.loss");
/// let mut b = simnet::rng::rng_for(7, "link.loss");
/// let mut c = simnet::rng::rng_for(7, "workload");
/// let (x, y, z): (u64, u64, u64) = (a.random(), b.random(), c.random());
/// assert_eq!(x, y);
/// assert_ne!(x, z);
/// ```
pub fn rng_for(root_seed: u64, label: &str) -> StdRng {
    let mixed = splitmix64(root_seed ^ fnv1a(label.as_bytes()));
    StdRng::seed_from_u64(mixed)
}

/// Derives a numbered sub-stream, for families of identical components
/// ("station 0", "station 1", …).
pub fn rng_for_indexed(root_seed: u64, label: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(sub_seed(root_seed, label, index))
}

/// Splits a root seed into the `index`-th numbered sub-seed for `label`.
///
/// This is the seed-valued counterpart of [`rng_for_indexed`], for code
/// that must hand a plain `u64` across a thread or configuration
/// boundary (the fleet runner derives each simulated user's seed this
/// way, so a user's whole random world depends only on the root seed and
/// the user's index — never on which thread happens to run it).
pub fn sub_seed(root_seed: u64, label: &str, index: u64) -> u64 {
    splitmix64(root_seed ^ fnv1a(label.as_bytes()) ^ splitmix64(index))
}

/// SplitMix64 finaliser — spreads low-entropy seeds across the state space.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_label_same_stream() {
        let mut a = rng_for(42, "alpha");
        let mut b = rng_for(42, "alpha");
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = rng_for(42, "alpha");
        let mut b = rng_for(42, "beta");
        let same = (0..32)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rng_for(1, "alpha");
        let mut b = rng_for(2, "alpha");
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let mut s0 = rng_for_indexed(9, "station", 0);
        let mut s1 = rng_for_indexed(9, "station", 1);
        assert_ne!(s0.random::<u64>(), s1.random::<u64>());
    }

    #[test]
    fn fnv_is_stable() {
        // Pin the offset basis so stream derivation never silently changes.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        let expected =
            (0xcbf2_9ce4_8422_2325_u64 ^ b'a' as u64).wrapping_mul(0x0000_0100_0000_01b3);
        assert_eq!(fnv1a(b"a"), expected);
    }
}
