//! Virtual time for the simulator.
//!
//! Simulated time is a monotonically increasing count of nanoseconds held in
//! a [`SimTime`]; intervals between instants are [`SimDuration`]s. Both are
//! thin `u64` newtypes — cheap to copy, totally ordered, and free of the
//! wall-clock ambiguity of `std::time`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock, measured in nanoseconds since the
/// simulation started.
///
/// ```
/// use simnet::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_micros(), 3_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use simnet::SimDuration;
/// let d = SimDuration::from_micros(1500);
/// assert_eq!(d.as_millis(), 1); // truncating
/// assert_eq!(d.as_secs_f64(), 0.0015);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant `nanos` nanoseconds after the origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Builds an instant `micros` microseconds after the origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Builds an instant `millis` milliseconds after the origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Builds an instant `secs` seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the origin (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the origin (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds since the origin (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since the origin as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is in the future, which
    /// keeps protocol code (RTT estimation, timeouts) total.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add that never wraps past [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty interval.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable interval; used as an "off" timeout sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Builds a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Builds a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Builds a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Builds a duration from a float number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Length in seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating difference, clamping at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating sum, clamping at [`SimDuration::MAX`].
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// The time it takes to serialise `bytes` bytes at `bits_per_sec`.
    ///
    /// This is the workhorse behind every link model in the workspace.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is zero.
    pub fn transmission(bytes: usize, bits_per_sec: u64) -> SimDuration {
        assert!(bits_per_sec > 0, "link bandwidth must be positive");
        let bits = bytes as u128 * 8;
        SimDuration(((bits * 1_000_000_000) / bits_per_sec as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("simulated duration overflow"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl Mul<u32> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u32) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs as u64)
                .expect("simulated duration overflow"),
        )
    }
}

impl Div<u32> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u32) -> SimDuration {
        SimDuration(self.0 / rhs as u64)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "inf")
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let t0 = SimTime::from_millis(10);
        let t1 = t0 + SimDuration::from_millis(15);
        assert_eq!(t1.as_millis(), 25);
        assert_eq!((t1 - t0).as_millis(), 15);
        // underflow clamps rather than panics
        assert_eq!((t0 - t1), SimDuration::ZERO);
    }

    #[test]
    fn transmission_time_matches_bandwidth() {
        // 1250 bytes at 10 Mbps = 10_000 bits / 10_000_000 bps = 1 ms
        let d = SimDuration::transmission(1250, 10_000_000);
        assert_eq!(d.as_micros(), 1_000);
        // 11 Mbps 802.11b frame of 1500 bytes
        let d = SimDuration::transmission(1500, 11_000_000);
        assert_eq!(d.as_micros(), 1_090);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = SimDuration::transmission(1, 0);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0015).as_micros(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(0.0).as_nanos(), 0);
    }

    #[test]
    fn display_is_humane() {
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
        assert_eq!(format!("{}", SimDuration::from_nanos(1500)), "1.500us");
        assert_eq!(format!("{}", SimDuration::from_nanos(15)), "15ns");
        assert_eq!(format!("{}", SimDuration::MAX), "inf");
    }

    #[test]
    fn ordering_and_sentinels() {
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::ZERO.is_zero());
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn mul_div_scale() {
        let d = SimDuration::from_millis(10);
        assert_eq!((d * 3).as_millis(), 30);
        assert_eq!((d / 2).as_millis(), 5);
    }
}
