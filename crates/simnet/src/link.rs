//! Byte-accurate point-to-point link model.
//!
//! A [`Link`] is a unidirectional FIFO bottleneck: messages are serialised
//! at the configured bandwidth, wait behind earlier messages, suffer the
//! configured propagation delay, may be dropped by a drop-tail queue bound
//! or a stochastic [`LossModel`], and are finally handed to a receiver
//! callback inside the simulator. Bidirectional channels are simply two
//! links.
//!
//! `Link` is generic over the message type `M`, which only has to report
//! its size on the wire via [`Wire`]. The IP stack, the radio models and
//! the end-to-end system all reuse this one bottleneck implementation.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::RngExt;

use crate::sim::Simulator;
use crate::stats::Counter;
use crate::time::{SimDuration, SimTime};

/// Anything that can be sent over a [`Link`]: it must know its wire size.
pub trait Wire {
    /// The number of bytes this message occupies on the wire, including any
    /// protocol framing the sender has already added.
    fn wire_size(&self) -> usize;
}

impl Wire for Vec<u8> {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

impl Wire for bytes::Bytes {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

/// Stochastic loss applied to each message independently of queue overflow.
#[derive(Debug, Clone, PartialEq)]
pub enum LossModel {
    /// No random loss (queue overflow can still drop).
    None,
    /// Drop each message with fixed probability `p` (0.0 ..= 1.0).
    Bernoulli {
        /// Per-message drop probability.
        p: f64,
    },
    /// Drop derived from a bit-error rate: a message of `n` bytes survives
    /// with probability `(1 - ber)^(8n)` — the standard independent-bit
    /// channel used to model error-prone wireless links.
    BitError {
        /// Probability that any single bit is corrupted.
        ber: f64,
    },
    /// Two-state Gilbert–Elliott burst-loss channel. In the *good* state
    /// messages survive; in the *bad* state they drop with `loss_in_bad`.
    /// Transitions happen per message.
    Gilbert {
        /// P(good → bad) per message.
        p_enter_bad: f64,
        /// P(bad → good) per message.
        p_exit_bad: f64,
        /// Drop probability while in the bad state.
        loss_in_bad: f64,
    },
}

impl LossModel {
    /// True when sampling this model consumes randomness (everything but
    /// [`LossModel::None`]).
    pub fn is_stochastic(&self) -> bool {
        !matches!(self, LossModel::None)
    }

    fn validate(&self) {
        let ok = |p: f64| (0.0..=1.0).contains(&p);
        let valid = match *self {
            LossModel::None => true,
            LossModel::Bernoulli { p } => ok(p),
            LossModel::BitError { ber } => ok(ber),
            LossModel::Gilbert {
                p_enter_bad,
                p_exit_bad,
                loss_in_bad,
            } => ok(p_enter_bad) && ok(p_exit_bad) && ok(loss_in_bad),
        };
        assert!(
            valid,
            "loss model probabilities must lie in [0, 1]: {self:?}"
        );
    }
}

/// Static configuration of a [`Link`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinkParams {
    /// Serialisation rate in bits per second. Must be positive.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Maximum number of messages in the transmitter (queued or being
    /// serialised) before drop-tail sets in.
    pub queue_capacity: usize,
    /// Stochastic loss model applied after queueing.
    pub loss: LossModel,
}

impl LinkParams {
    /// A convenient lossless link.
    pub fn reliable(bandwidth_bps: u64, propagation: SimDuration) -> Self {
        LinkParams {
            bandwidth_bps,
            propagation,
            queue_capacity: 256,
            loss: LossModel::None,
        }
    }

    /// Typical wired LAN/WAN segment: 100 Mbps, 2 ms, effectively lossless.
    pub fn wired_lan() -> Self {
        Self::reliable(100_000_000, SimDuration::from_millis(2))
    }

    /// Typical wired Internet path: 10 Mbps bottleneck, 20 ms propagation.
    pub fn wired_wan() -> Self {
        Self::reliable(10_000_000, SimDuration::from_millis(20))
    }
}

/// A delivery callback shared between the link and its scheduled events.
type Receiver<M> = Rc<dyn Fn(&mut Simulator, M)>;

/// Derives the deterministic fallback seed for a link that was given a
/// stochastic loss model but no RNG: a stable FNV-1a fold of the link
/// parameters. Identical parameters always yield the identical stream, so
/// auto-seeded links keep fixed-seed runs reproducible; links that need
/// *independent* streams should still call [`Link::set_rng`] with a
/// [`crate::rng::rng_for`]-derived RNG.
fn auto_seed(params: &LinkParams) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    fold(params.bandwidth_bps);
    fold(params.propagation.as_nanos());
    fold(params.queue_capacity as u64);
    match params.loss {
        LossModel::None => fold(0),
        LossModel::Bernoulli { p } => {
            fold(1);
            fold(p.to_bits());
        }
        LossModel::BitError { ber } => {
            fold(2);
            fold(ber.to_bits());
        }
        LossModel::Gilbert {
            p_enter_bad,
            p_exit_bad,
            loss_in_bad,
        } => {
            fold(3);
            fold(p_enter_bad.to_bits());
            fold(p_exit_bad.to_bits());
            fold(loss_in_bad.to_bits());
        }
    }
    hash
}

fn auto_rng(params: &LinkParams) -> StdRng {
    crate::rng::rng_for(auto_seed(params), "link.autoseed")
}

struct LinkState<M> {
    /// Virtual time at which the transmitter becomes idle.
    tx_free_at: SimTime,
    /// Messages queued (not yet begun serialisation).
    queued: usize,
    gilbert_bad: bool,
    rng: Option<StdRng>,
    receiver: Option<Receiver<M>>,
}

/// A unidirectional bottleneck link carrying messages of type `M`.
///
/// ```
/// use std::rc::Rc;
/// use std::cell::RefCell;
/// use simnet::{Simulator, Link, LinkParams, SimDuration};
///
/// let mut sim = Simulator::new();
/// let link = Link::new(LinkParams::reliable(8_000, SimDuration::from_millis(10)));
/// let got: Rc<RefCell<Vec<Vec<u8>>>> = Rc::default();
/// let sink = Rc::clone(&got);
/// link.set_receiver(move |_sim, msg| sink.borrow_mut().push(msg));
/// link.send(&mut sim, vec![0u8; 1000]); // 1000 B at 8 kbps = 1 s + 10 ms
/// sim.run();
/// assert_eq!(got.borrow().len(), 1);
/// assert_eq!(sim.now().as_millis(), 1010);
/// ```
pub struct Link<M> {
    params: RefCell<LinkParams>,
    state: RefCell<LinkState<M>>,
    /// Messages handed to [`Link::send`].
    pub offered: Counter,
    /// Messages delivered to the receiver.
    pub delivered: Counter,
    /// Messages dropped by queue overflow.
    pub dropped_queue: Counter,
    /// Messages dropped by the stochastic loss model.
    pub dropped_loss: Counter,
    /// Payload bytes delivered.
    pub bytes_delivered: Counter,
}

impl<M> fmt::Debug for Link<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Link")
            .field("params", &*self.params.borrow())
            .field("offered", &self.offered.get())
            .field("delivered", &self.delivered.get())
            .finish()
    }
}

impl<M: Wire + 'static> Link<M> {
    /// Creates a link with the given parameters.
    ///
    /// If `params.loss` is stochastic and no RNG is ever attached via
    /// [`Link::set_rng`] / [`Link::with_rng`], the link deterministically
    /// auto-seeds one from a stable hash of its parameters, so a fault
    /// plan swapping a loss model onto a plain link mid-simulation keeps
    /// working — and keeps fixed-seed runs byte-identical. Attach an
    /// explicit RNG when several identically-configured links must see
    /// independent loss streams.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero or a probability is out of range.
    pub fn new(params: LinkParams) -> Rc<Self> {
        assert!(params.bandwidth_bps > 0, "link bandwidth must be positive");
        params.loss.validate();
        let rng = params.loss.is_stochastic().then(|| auto_rng(&params));
        Rc::new(Link {
            params: RefCell::new(params),
            state: RefCell::new(LinkState {
                tx_free_at: SimTime::ZERO,
                queued: 0,
                gilbert_bad: false,
                rng,
                receiver: None,
            }),
            offered: Counter::new(),
            delivered: Counter::new(),
            dropped_queue: Counter::new(),
            dropped_loss: Counter::new(),
            bytes_delivered: Counter::new(),
        })
    }

    /// Creates a link and attaches the RNG driving its loss model.
    pub fn with_rng(params: LinkParams, rng: StdRng) -> Rc<Self> {
        let link = Self::new(params);
        link.set_rng(rng);
        link
    }

    /// Attaches (or replaces) the RNG driving the loss model.
    pub fn set_rng(&self, rng: StdRng) {
        self.state.borrow_mut().rng = Some(rng);
    }

    /// Sets the delivery callback. Replaces any previous receiver.
    pub fn set_receiver(&self, receiver: impl Fn(&mut Simulator, M) + 'static) {
        self.state.borrow_mut().receiver = Some(Rc::new(receiver));
    }

    /// Current link parameters.
    pub fn params(&self) -> LinkParams {
        self.params.borrow().clone()
    }

    /// Replaces the link parameters mid-simulation.
    ///
    /// Used by the radio models to change rate/loss as a station moves.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Link::new`].
    pub fn set_params(&self, params: LinkParams) {
        assert!(params.bandwidth_bps > 0, "link bandwidth must be positive");
        params.loss.validate();
        if params.loss.is_stochastic() {
            // A link that has never needed randomness may be handed a
            // stochastic model mid-simulation (fault plans do exactly
            // this); auto-seed rather than letting the next send fail.
            let mut state = self.state.borrow_mut();
            if state.rng.is_none() {
                state.rng = Some(auto_rng(&params));
            }
        }
        *self.params.borrow_mut() = params;
    }

    /// Offers `msg` to the link at the current simulated time.
    ///
    /// The message is dropped (with the appropriate counter bumped) on queue
    /// overflow or stochastic loss; otherwise the receiver callback fires
    /// after queueing + serialisation + propagation.
    pub fn send(self: &Rc<Self>, sim: &mut Simulator, msg: M) {
        self.offered.incr();
        let size = msg.wire_size();
        let params = self.params.borrow().clone();

        {
            let state = self.state.borrow();
            if state.queued >= params.queue_capacity {
                drop(state);
                self.dropped_queue.incr();
                crate::metrics::incr("link.dropped_queue");
                return;
            }
        }

        if self.sample_loss(&params, size) {
            self.dropped_loss.incr();
            crate::metrics::incr("link.dropped_loss");
            return;
        }

        let ser = SimDuration::transmission(size, params.bandwidth_bps);
        let (deliver_at, depart_at) = {
            let mut state = self.state.borrow_mut();
            let start = state.tx_free_at.max(sim.now());
            let depart = start + ser;
            state.tx_free_at = depart;
            state.queued += 1;
            (depart + params.propagation, depart)
        };

        let link = Rc::clone(self);
        sim.schedule_at(depart_at, move |_| {
            link.state.borrow_mut().queued -= 1;
        });

        let link = Rc::clone(self);
        sim.schedule_at(deliver_at, move |sim| {
            let receiver = link.state.borrow().receiver.clone();
            let Some(receiver) = receiver else {
                return; // no receiver attached: message evaporates
            };
            link.delivered.incr();
            link.bytes_delivered.add(size as u64);
            crate::metrics::incr("link.delivered");
            receiver(sim, msg);
        });
    }

    /// Samples the stochastic loss model for a message of `size` bytes.
    /// Returns `true` when the message should be dropped.
    fn sample_loss(&self, params: &LinkParams, size: usize) -> bool {
        if matches!(params.loss, LossModel::None) {
            return false;
        }
        let mut state = self.state.borrow_mut();
        let state = &mut *state;
        // Belt and braces: `new`/`set_params` already auto-seed, but a
        // caller mutating loss through some future path must never panic
        // mid-simulation over a missing RNG.
        let rng = state.rng.get_or_insert_with(|| auto_rng(params));
        match params.loss {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.random_bool(p),
            LossModel::BitError { ber } => {
                // A message of n bytes survives iff all 8n bits survive:
                // P(survive) = (1 - ber)^(8n).
                let survive = (1.0 - ber).powi((size as i32).saturating_mul(8).max(1));
                !rng.random_bool(survive.clamp(0.0, 1.0))
            }
            LossModel::Gilbert {
                p_enter_bad,
                p_exit_bad,
                loss_in_bad,
            } => {
                if state.gilbert_bad {
                    if rng.random_bool(p_exit_bad) {
                        state.gilbert_bad = false;
                    }
                } else if rng.random_bool(p_enter_bad) {
                    state.gilbert_bad = true;
                }
                state.gilbert_bad && rng.random_bool(loss_in_bad)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for;
    use std::cell::RefCell;

    #[allow(clippy::type_complexity)]
    fn collect_link(params: LinkParams) -> (Rc<Link<Vec<u8>>>, Rc<RefCell<Vec<(u64, usize)>>>) {
        let link = Link::new(params);
        let got: Rc<RefCell<Vec<(u64, usize)>>> = Rc::default();
        let sink = Rc::clone(&got);
        link.set_receiver(move |sim, msg: Vec<u8>| {
            sink.borrow_mut().push((sim.now().as_micros(), msg.len()));
        });
        (link, got)
    }

    #[test]
    fn delivery_time_is_queue_plus_ser_plus_prop() {
        let mut sim = Simulator::new();
        // 1 Mbps, 5 ms propagation: 1250-byte message = 10 ms serialisation.
        let (link, got) =
            collect_link(LinkParams::reliable(1_000_000, SimDuration::from_millis(5)));
        link.send(&mut sim, vec![0u8; 1250]);
        link.send(&mut sim, vec![0u8; 1250]); // queues behind the first
        sim.run();
        let got = got.borrow();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 15_000); // 10 ms ser + 5 ms prop
        assert_eq!(got[1].0, 25_000); // waits 10 ms, then 10 + 5
    }

    #[test]
    fn pipeline_overlaps_serialisation_and_propagation() {
        let mut sim = Simulator::new();
        // Long propagation: second message departs before first arrives.
        let (link, got) = collect_link(LinkParams::reliable(
            10_000_000,
            SimDuration::from_millis(50),
        ));
        link.send(&mut sim, vec![0u8; 1250]); // 1 ms ser
        link.send(&mut sim, vec![0u8; 1250]);
        sim.run();
        let got = got.borrow();
        assert_eq!(got[0].0, 51_000);
        assert_eq!(got[1].0, 52_000);
    }

    #[test]
    fn queue_overflow_drops_tail() {
        let mut sim = Simulator::new();
        let mut params = LinkParams::reliable(8_000, SimDuration::ZERO); // 1 B/ms
        params.queue_capacity = 2;
        let (link, got) = collect_link(params);
        for _ in 0..5 {
            link.send(&mut sim, vec![0u8; 100]);
        }
        sim.run();
        // capacity 2 + the nothing-special first message still count queued
        // until their departure events fire, so 2 of 5 are dropped at least.
        assert_eq!(link.offered.get(), 5);
        assert_eq!(link.dropped_queue.get() + got.borrow().len() as u64, 5);
        assert!(link.dropped_queue.get() >= 2);
    }

    #[test]
    fn bernoulli_loss_rate_is_respected() {
        let mut sim = Simulator::new();
        let mut params = LinkParams::reliable(1_000_000_000, SimDuration::ZERO);
        params.loss = LossModel::Bernoulli { p: 0.3 };
        params.queue_capacity = 100_000;
        let (link, got) = collect_link(params);
        link.set_rng(rng_for(1, "test.bernoulli"));
        for _ in 0..10_000 {
            link.send(&mut sim, vec![0u8; 10]);
        }
        sim.run();
        let delivered = got.borrow().len() as f64;
        let rate = 1.0 - delivered / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "observed loss {rate}");
    }

    #[test]
    fn bit_error_loss_scales_with_size() {
        let mut sim = Simulator::new();
        let mut params = LinkParams::reliable(1_000_000_000, SimDuration::ZERO);
        params.loss = LossModel::BitError { ber: 1e-4 };
        params.queue_capacity = 100_000;
        let (link_small, got_small) = collect_link(params.clone());
        let (link_big, got_big) = collect_link(params);
        link_small.set_rng(rng_for(2, "test.ber.small"));
        link_big.set_rng(rng_for(2, "test.ber.big"));
        for _ in 0..3000 {
            link_small.send(&mut sim, vec![0u8; 50]);
            link_big.send(&mut sim, vec![0u8; 1500]);
        }
        sim.run();
        // 50 B ⇒ survive ≈ 0.96; 1500 B ⇒ survive ≈ 0.30
        let s = got_small.borrow().len() as f64 / 3000.0;
        let b = got_big.borrow().len() as f64 / 3000.0;
        assert!(s > 0.92, "small-frame survival {s}");
        assert!(b < 0.40, "large-frame survival {b}");
        assert!(s > b + 0.4);
    }

    #[test]
    fn gilbert_losses_come_in_bursts() {
        let mut sim = Simulator::new();
        let mut params = LinkParams::reliable(1_000_000_000, SimDuration::ZERO);
        params.loss = LossModel::Gilbert {
            p_enter_bad: 0.01,
            p_exit_bad: 0.2,
            loss_in_bad: 0.9,
        };
        params.queue_capacity = 100_000;
        let (link, got) = collect_link(params);
        link.set_rng(rng_for(3, "test.gilbert"));
        let n = 20_000;
        for i in 0..n {
            link.send(&mut sim, vec![i as u8; 10]);
        }
        sim.run();
        let delivered = got.borrow().len();
        let lost = n - delivered;
        // Stationary bad-state probability ≈ 0.01/(0.01+0.2) ≈ 4.8%, so loss
        // ≈ 4.3%; and losses must cluster (more than isolated-drop entropy).
        let rate = lost as f64 / n as f64;
        assert!(rate > 0.01 && rate < 0.10, "gilbert loss rate {rate}");
    }

    #[test]
    fn set_params_changes_future_sends() {
        let mut sim = Simulator::new();
        let (link, got) = collect_link(LinkParams::reliable(1_000_000, SimDuration::ZERO));
        link.send(&mut sim, vec![0u8; 1250]); // 10 ms at 1 Mbps
        sim.run();
        link.set_params(LinkParams::reliable(10_000_000, SimDuration::ZERO));
        link.send(&mut sim, vec![0u8; 1250]); // 1 ms at 10 Mbps
        sim.run();
        let got = got.borrow();
        assert_eq!(got[0].0, 10_000);
        assert_eq!(got[1].0, 11_000);
    }

    #[test]
    fn stochastic_loss_without_rng_auto_seeds_deterministically() {
        // Regression: this used to panic via `expect`. Two links with
        // identical parameters and no explicit RNG must now (a) work and
        // (b) produce the identical loss pattern.
        let run = || {
            let mut sim = Simulator::new();
            let mut params = LinkParams::reliable(1_000_000_000, SimDuration::ZERO);
            params.loss = LossModel::Bernoulli { p: 0.5 };
            params.queue_capacity = 10_000;
            let (link, got) = collect_link(params);
            for _ in 0..1000 {
                link.send(&mut sim, vec![0u8; 10]);
            }
            sim.run();
            let delivered = got.borrow().len();
            (delivered, link.dropped_loss.get())
        };
        let (a_delivered, a_lost) = run();
        let (b_delivered, b_lost) = run();
        assert_eq!(a_delivered, b_delivered);
        assert_eq!(a_lost, b_lost);
        assert!(a_delivered > 0 && a_lost > 0, "p=0.5 must drop some");
    }

    #[test]
    fn set_params_swap_to_stochastic_auto_seeds() {
        // The fault-plan case: a reliable link is handed a burst-loss
        // model mid-simulation without anyone attaching an RNG.
        let mut sim = Simulator::new();
        let (link, got) = collect_link(LinkParams::reliable(1_000_000_000, SimDuration::ZERO));
        link.send(&mut sim, vec![0u8; 10]);
        sim.run();
        let mut params = link.params();
        params.loss = LossModel::Gilbert {
            p_enter_bad: 0.3,
            p_exit_bad: 0.1,
            loss_in_bad: 1.0,
        };
        params.queue_capacity = 10_000;
        link.set_params(params);
        for _ in 0..500 {
            link.send(&mut sim, vec![0u8; 10]);
        }
        sim.run();
        assert!(link.dropped_loss.get() > 0, "burst model never dropped");
        assert!(got.borrow().len() > 1, "burst model dropped everything");
    }

    #[test]
    fn counters_track_bytes() {
        let mut sim = Simulator::new();
        let (link, _got) = collect_link(LinkParams::reliable(1_000_000, SimDuration::ZERO));
        link.send(&mut sim, vec![0u8; 100]);
        link.send(&mut sim, vec![0u8; 200]);
        sim.run();
        assert_eq!(link.bytes_delivered.get(), 300);
        assert_eq!(link.delivered.get(), 2);
    }
}
