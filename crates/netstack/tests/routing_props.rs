//! Property tests for addressing and routing.

use netstack::{Ip, Node, Subnet};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Text round-trip for any address.
    #[test]
    fn ip_display_parse_round_trips(bits in any::<u32>()) {
        let ip = Ip(bits);
        let text = ip.to_string();
        prop_assert_eq!(text.parse::<Ip>().unwrap(), ip);
    }

    /// A subnet contains exactly the addresses sharing its prefix.
    #[test]
    fn subnet_membership_matches_mask_arithmetic(
        base in any::<u32>(),
        prefix in 0u8..=32,
        probe in any::<u32>(),
    ) {
        let net = Subnet::new(Ip(base), prefix);
        let mask: u64 = if prefix == 0 { 0 } else { (!0u32 << (32 - prefix as u32)) as u64 };
        let expected = (probe as u64 & mask) == (base as u64 & mask);
        prop_assert_eq!(net.contains(Ip(probe)), expected);
        // The base itself is always a member.
        prop_assert!(net.contains(net.base()));
    }

    /// Longest-prefix match agrees with a brute-force reference.
    #[test]
    fn route_lookup_matches_reference(
        routes in proptest::collection::vec((any::<u32>(), 0u8..=32, any::<u32>()), 0..12),
        dst in any::<u32>(),
    ) {
        let node = Node::new("t");
        node.add_addr(Ip(1));
        for (base, prefix, via) in &routes {
            node.add_route(Subnet::new(Ip(*base), *prefix), Ip(*via));
        }
        let best_len = routes
            .iter()
            .filter(|(base, prefix, _)| Subnet::new(Ip(*base), *prefix).contains(Ip(dst)))
            .map(|(_, prefix, _)| *prefix)
            .max();
        match (node.route_for(Ip(dst)), best_len) {
            (None, None) => {}
            (Some(via), Some(len)) => {
                // The chosen next hop must belong to some matching route of
                // the maximal prefix length.
                let valid = routes.iter().any(|(base, prefix, v)| {
                    *prefix == len
                        && Subnet::new(Ip(*base), *prefix).contains(Ip(dst))
                        && Ip(*v) == via
                });
                prop_assert!(valid, "picked {via} with prefix {len}");
            }
            (got, want) => prop_assert!(false, "mismatch: got {got:?}, reference {want:?}"),
        }
    }
}
