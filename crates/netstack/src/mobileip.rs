//! Mobile IP — §5.2 of the paper.
//!
//! "The Mobile IP defines enhancements that permit IP nodes … to
//! seamlessly 'roam' among IP subnetworks … Two types of mobile-IP capable
//! router, home agent (HA) and foreign agent (FA), are defined to assist
//! routing when the mobile node is away from its home network. All
//! datagrams destined for the mobile node are intercepted by HA and
//! tunneled to FA. FA then delivers these packets to the mobile node
//! through a care-of-address established when the mobile node is attached
//! to FA."
//!
//! This module implements exactly that lifecycle with real packets over
//! the simulated network: agent registration (request/reply), the HA's
//! binding table and interception tap, IP-in-IP tunneling to the care-of
//! address, the FA's visitor list and direct delivery, and deregistration
//! when the mobile returns home.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use simnet::stats::Counter;
use simnet::trace::Trace;
use simnet::Simulator;

use crate::addr::Ip;
use crate::node::{Node, TapResult};
use crate::packet::{IpPacket, Payload, Protocol};

/// Wire size of a Mobile IP control message (UDP port 434 registration
/// messages are ~24–40 bytes; we charge a flat figure).
pub const MIP_CONTROL_BYTES: usize = 32;

/// Mobile IP control messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MipMsg {
    /// Mobile node → (FA) → HA: bind `mobile` to care-of address `coa`.
    /// `lifetime_s == 0` requests deregistration.
    RegRequest {
        /// The mobile node's home address.
        mobile: Ip,
        /// Care-of address (the foreign agent's address).
        coa: Ip,
        /// Binding lifetime in seconds; zero deregisters.
        lifetime_s: u32,
        /// Request identifier echoed in the reply.
        id: u64,
    },
    /// HA → (FA) → mobile: outcome of a registration request.
    RegReply {
        /// The mobile node's home address.
        mobile: Ip,
        /// Request identifier being answered.
        id: u64,
        /// Whether the binding was installed/removed.
        accepted: bool,
    },
    /// FA → everyone in radio range: "I am a foreign agent; my care-of
    /// address is `coa`" — the agent advertisement of RFC 3344.
    Advertisement {
        /// The advertised care-of address.
        coa: Ip,
    },
}

/// The home agent: a router on the mobile's home subnet that intercepts
/// datagrams for registered-away mobiles and tunnels them to the care-of
/// address.
pub struct HomeAgent {
    node: Rc<Node>,
    addr: Ip,
    bindings: Rc<RefCell<HashMap<Ip, Ip>>>,
    /// Datagrams intercepted and tunneled.
    pub tunneled: Counter,
    trace: Trace,
}

impl std::fmt::Debug for HomeAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HomeAgent")
            .field("addr", &self.addr)
            .field("bindings", &*self.bindings.borrow())
            .finish()
    }
}

impl HomeAgent {
    /// Installs home-agent behaviour on `node` (which must own `addr`):
    /// a tap that intercepts and tunnels datagrams for bound mobiles, and
    /// a control handler for registration requests.
    pub fn install(node: Rc<Node>, addr: Ip, trace: Trace) -> Rc<Self> {
        assert!(
            node.has_addr(addr),
            "home agent address must belong to its node"
        );
        let ha = Rc::new(HomeAgent {
            node: Rc::clone(&node),
            addr,
            bindings: Rc::default(),
            tunneled: Counter::new(),
            trace,
        });

        // Interception tap: any packet whose destination has a binding is
        // encapsulated toward the care-of address — including packets that
        // would otherwise be delivered or forwarded normally.
        {
            let ha = Rc::clone(&ha);
            node.set_tap(move |sim, node, pkt| {
                // Never re-intercept our own tunnel packets.
                if pkt.proto == Protocol::IpInIp {
                    return TapResult::Continue(pkt);
                }
                let coa = ha.bindings.borrow().get(&pkt.dst).copied();
                match coa {
                    Some(coa) => {
                        ha.tunneled.incr();
                        ha.trace.log(
                            sim.now(),
                            "mip",
                            format!("HA intercept {} -> tunnel to CoA {}", pkt.dst, coa),
                        );
                        let tunneled = pkt.encapsulate(ha.addr, coa);
                        node.send(sim, tunneled);
                        TapResult::Consumed
                    }
                    None => TapResult::Continue(pkt),
                }
            });
        }

        // Registration handling.
        {
            let ha = Rc::clone(&ha);
            node.set_upper(Protocol::MipControl, move |sim, pkt| {
                ha.handle_control(sim, pkt);
            });
        }
        ha
    }

    fn handle_control(self: &Rc<Self>, sim: &mut Simulator, pkt: IpPacket) {
        let Some(&msg) = pkt.payload.downcast_ref::<MipMsg>() else {
            return;
        };
        if let MipMsg::RegRequest {
            mobile,
            coa,
            lifetime_s,
            id,
        } = msg
        {
            let deregister = lifetime_s == 0;
            if deregister {
                self.bindings.borrow_mut().remove(&mobile);
                self.trace
                    .log(sim.now(), "mip", format!("HA deregistered {mobile}"));
            } else {
                self.bindings.borrow_mut().insert(mobile, coa);
                self.trace
                    .log(sim.now(), "mip", format!("HA bound {mobile} -> CoA {coa}"));
            }
            let reply = MipMsg::RegReply {
                mobile,
                id,
                accepted: true,
            };
            // Reply travels to wherever the request came from (the FA for
            // away registrations, the mobile itself for deregistration).
            let out = IpPacket::new(
                self.addr,
                pkt.src,
                Protocol::MipControl,
                Payload::new(reply, MIP_CONTROL_BYTES),
            );
            self.node.send(sim, out);
        }
    }

    /// Current care-of address bound for `mobile`, if any.
    pub fn binding(&self, mobile: Ip) -> Option<Ip> {
        self.bindings.borrow().get(&mobile).copied()
    }
}

/// The foreign agent: advertises a care-of address, relays registrations,
/// decapsulates tunneled datagrams and delivers them to visiting mobiles
/// over the local (wireless) interface.
pub struct ForeignAgent {
    node: Rc<Node>,
    addr: Ip,
    ha_addr: Ip,
    visitors: Rc<RefCell<HashMap<Ip, u64>>>,
    /// Tunnel packets decapsulated and delivered locally.
    pub decapsulated: Counter,
    trace: Trace,
}

impl std::fmt::Debug for ForeignAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForeignAgent")
            .field("addr", &self.addr)
            .field(
                "visitors",
                &self.visitors.borrow().keys().collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl ForeignAgent {
    /// Installs foreign-agent behaviour on `node` (which must own `addr`):
    /// registration relaying toward the home agent at `ha_addr` and tunnel
    /// decapsulation with direct delivery to visitors.
    pub fn install(node: Rc<Node>, addr: Ip, ha_addr: Ip, trace: Trace) -> Rc<Self> {
        assert!(
            node.has_addr(addr),
            "foreign agent address must belong to its node"
        );
        let fa = Rc::new(ForeignAgent {
            node: Rc::clone(&node),
            addr,
            ha_addr,
            visitors: Rc::default(),
            decapsulated: Counter::new(),
            trace,
        });

        // Tunnel endpoint: decapsulate and deliver straight to the visitor.
        {
            let fa = Rc::clone(&fa);
            node.set_upper(Protocol::IpInIp, move |sim, pkt| {
                let Some(inner) = pkt.decapsulate() else {
                    return;
                };
                if fa.visitors.borrow().contains_key(&inner.dst) {
                    fa.decapsulated.incr();
                    fa.trace.log(
                        sim.now(),
                        "mip",
                        format!("FA decap for visitor {}", inner.dst),
                    );
                    fa.node.send_direct(sim, inner.dst, inner);
                }
            });
        }

        // Control relay.
        {
            let fa = Rc::clone(&fa);
            node.set_upper(Protocol::MipControl, move |sim, pkt| {
                fa.handle_control(sim, pkt);
            });
        }
        fa
    }

    fn handle_control(self: &Rc<Self>, sim: &mut Simulator, pkt: IpPacket) {
        let Some(&msg) = pkt.payload.downcast_ref::<MipMsg>() else {
            return;
        };
        match msg {
            MipMsg::RegRequest {
                mobile,
                lifetime_s,
                id,
                ..
            } => {
                // Relay toward the HA with our address as the care-of
                // address, noting the visitor (pending until the reply).
                self.visitors.borrow_mut().insert(mobile, id);
                let relayed = MipMsg::RegRequest {
                    mobile,
                    coa: self.addr,
                    lifetime_s,
                    id,
                };
                self.trace.log(
                    sim.now(),
                    "mip",
                    format!("FA relaying registration of {mobile} to HA"),
                );
                let out = IpPacket::new(
                    self.addr,
                    self.ha_addr,
                    Protocol::MipControl,
                    Payload::new(relayed, MIP_CONTROL_BYTES),
                );
                self.node.send(sim, out);
            }
            MipMsg::RegReply { mobile, .. } => {
                // Forward the reply to the visiting mobile over the local
                // interface.
                let out =
                    IpPacket::new(self.addr, mobile, Protocol::MipControl, pkt.payload.clone());
                self.node.send_direct(sim, mobile, out);
            }
            // Advertisements are outbound-only; one arriving here (e.g.
            // from a neighbouring agent) is ignored.
            MipMsg::Advertisement { .. } => {}
        }
    }

    /// Starts periodic agent advertisements: every `period`, one
    /// [`MipMsg::Advertisement`] goes out of each interface to each
    /// directly connected neighbour. Stations that wander into this
    /// agent's cell learn the care-of address without configuration.
    pub fn start_advertising(self: &Rc<Self>, sim: &mut Simulator, period: simnet::SimDuration) {
        let fa = Rc::clone(self);
        sim.schedule_in(period, move |sim| {
            for neighbor in fa.node.neighbors() {
                let ad = MipMsg::Advertisement { coa: fa.addr };
                let pkt = IpPacket::new(
                    fa.addr,
                    neighbor,
                    Protocol::MipControl,
                    Payload::new(ad, MIP_CONTROL_BYTES),
                );
                fa.node.send_direct(sim, neighbor, pkt);
            }
            fa.start_advertising(sim, period);
        });
    }

    /// True if `mobile` is on the visitor list.
    pub fn has_visitor(&self, mobile: Ip) -> bool {
        self.visitors.borrow().contains_key(&mobile)
    }

    /// Removes `mobile` from the visitor list (on departure).
    pub fn remove_visitor(&self, mobile: Ip) {
        self.visitors.borrow_mut().remove(&mobile);
    }

    /// The care-of address this agent advertises.
    pub fn care_of_addr(&self) -> Ip {
        self.addr
    }
}

/// Registration state of a [`MobileIpClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MipState {
    /// Attached to the home network; no binding needed.
    Home,
    /// Registration request sent, awaiting reply.
    Registering,
    /// Bound: datagrams are tunneled via the foreign agent.
    Registered,
}

/// The mobile node's Mobile IP client state machine.
pub struct MobileIpClient {
    node: Rc<Node>,
    home_addr: Ip,
    ha_addr: Ip,
    state: Cell<MipState>,
    next_id: Cell<u64>,
    auto_register: Cell<bool>,
    current_coa: Cell<Option<Ip>>,
    on_registered: RefCell<Vec<RegisteredCallback>>,
    trace: Trace,
}

/// Callback invoked when a registration completes.
type RegisteredCallback = Rc<dyn Fn(&mut Simulator)>;

impl std::fmt::Debug for MobileIpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MobileIpClient")
            .field("home_addr", &self.home_addr)
            .field("state", &self.state.get())
            .finish()
    }
}

impl MobileIpClient {
    /// Installs the client on the mobile's node.
    pub fn install(node: Rc<Node>, home_addr: Ip, ha_addr: Ip, trace: Trace) -> Rc<Self> {
        let client = Rc::new(MobileIpClient {
            node: Rc::clone(&node),
            home_addr,
            ha_addr,
            state: Cell::new(MipState::Home),
            next_id: Cell::new(1),
            auto_register: Cell::new(false),
            current_coa: Cell::new(None),
            on_registered: RefCell::new(Vec::new()),
            trace,
        });
        {
            let client = Rc::clone(&client);
            node.set_upper(Protocol::MipControl, move |sim, pkt| {
                match pkt.payload.downcast_ref::<MipMsg>() {
                    Some(&MipMsg::RegReply { accepted, .. })
                        if accepted && client.state.get() == MipState::Registering =>
                    {
                        client.state.set(MipState::Registered);
                        client.trace.log(
                            sim.now(),
                            "mip",
                            format!("{} registered", client.home_addr),
                        );
                        let listeners: Vec<_> = client.on_registered.borrow().clone();
                        for l in listeners {
                            l(sim);
                        }
                    }
                    Some(&MipMsg::Advertisement { coa }) => {
                        // A foreign agent is in range. If we are not bound
                        // (or were bound elsewhere), register through it.
                        let needs_registration = match client.state.get() {
                            MipState::Home => coa != client.ha_addr,
                            MipState::Registering => false,
                            MipState::Registered => client.current_coa.get() != Some(coa),
                        };
                        if needs_registration && client.auto_register.get() {
                            client.trace.log(
                                sim.now(),
                                "mip",
                                format!("{} heard advertisement from {coa}", client.home_addr),
                            );
                            client.current_coa.set(Some(coa));
                            client.register_via(sim, coa);
                        }
                    }
                    _ => {}
                }
            });
        }
        client
    }

    /// Enables automatic registration on hearing a foreign agent's
    /// advertisement (on by default for configured clients that call it).
    pub fn set_auto_register(&self, enabled: bool) {
        self.auto_register.set(enabled);
    }

    /// Current state.
    pub fn state(&self) -> MipState {
        self.state.get()
    }

    /// Registers a callback fired when a registration completes.
    pub fn on_registered(&self, f: impl Fn(&mut Simulator) + 'static) {
        self.on_registered.borrow_mut().push(Rc::new(f));
    }

    /// Begins registration through the foreign agent at `fa_addr`.
    ///
    /// The caller must already have connected the mobile's node to the FA
    /// and pointed its default route at it; this sends the registration
    /// request over that link.
    pub fn register_via(&self, sim: &mut Simulator, fa_addr: Ip) {
        let id = self.next_id.replace(self.next_id.get() + 1);
        self.state.set(MipState::Registering);
        let req = MipMsg::RegRequest {
            mobile: self.home_addr,
            coa: fa_addr,
            lifetime_s: 600,
            id,
        };
        self.trace.log(
            sim.now(),
            "mip",
            format!(
                "{} requesting registration via FA {}",
                self.home_addr, fa_addr
            ),
        );
        let pkt = IpPacket::new(
            self.home_addr,
            fa_addr,
            Protocol::MipControl,
            Payload::new(req, MIP_CONTROL_BYTES),
        );
        self.node.send(sim, pkt);
    }

    /// Deregisters directly with the home agent (used on returning home).
    pub fn deregister(&self, sim: &mut Simulator) {
        let id = self.next_id.replace(self.next_id.get() + 1);
        self.state.set(MipState::Home);
        let req = MipMsg::RegRequest {
            mobile: self.home_addr,
            coa: self.home_addr,
            lifetime_s: 0,
            id,
        };
        let pkt = IpPacket::new(
            self.home_addr,
            self.ha_addr,
            Protocol::MipControl,
            Payload::new(req, MIP_CONTROL_BYTES),
        );
        self.node.send(sim, pkt);
    }

    /// The mobile's permanent home address.
    pub fn home_addr(&self) -> Ip {
        self.home_addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Subnet;
    use crate::node::Network;
    use simnet::{LinkParams, SimDuration};
    use std::cell::RefCell;

    /// Topology:
    ///
    /// ```text
    ///  correspondent (20.0.0.9)
    ///        |
    ///     internet router (30.0.0.1)
    ///     /            \
    ///  HA (10.0.0.1)   FA (11.0.0.1)
    ///     |               |
    ///  mobile home     (mobile visits here)
    ///  (10.0.0.5)
    /// ```
    struct World {
        sim: Simulator,
        corr: Rc<Node>,
        ha_node: Rc<Node>,
        fa_node: Rc<Node>,
        mobile: Rc<Node>,
        ha: Rc<HomeAgent>,
        fa: Rc<ForeignAgent>,
        client: Rc<MobileIpClient>,
        trace: Trace,
    }

    const CORR: Ip = Ip::new(20, 0, 0, 9);
    const ROUTER: Ip = Ip::new(30, 0, 0, 1);
    const HA_ADDR: Ip = Ip::new(10, 0, 0, 1);
    const FA_ADDR: Ip = Ip::new(11, 0, 0, 1);
    const MOBILE: Ip = Ip::new(10, 0, 0, 5);

    fn build(at_home: bool) -> World {
        let sim = Simulator::new();
        let trace = Trace::for_test();
        let mut net = Network::new();
        let corr = net.add_node("corr", CORR);
        let router = net.add_node("router", ROUTER);
        let ha_node = net.add_node("ha", HA_ADDR);
        let fa_node = net.add_node("fa", FA_ADDR);
        let mobile = net.add_node("mobile", MOBILE);

        let wired = LinkParams::wired_wan();
        Network::connect(&corr, CORR, &router, ROUTER, wired.clone());
        Network::connect(&router, ROUTER, &ha_node, HA_ADDR, wired.clone());
        Network::connect(&router, ROUTER, &fa_node, FA_ADDR, wired);

        corr.add_route(Subnet::DEFAULT, ROUTER);
        router.add_route("10.0.0.0/8".parse().unwrap(), HA_ADDR);
        router.add_route("11.0.0.0/8".parse().unwrap(), FA_ADDR);
        ha_node.add_route(Subnet::DEFAULT, ROUTER);
        fa_node.add_route(Subnet::DEFAULT, ROUTER);

        let ha = HomeAgent::install(Rc::clone(&ha_node), HA_ADDR, trace.clone());
        let fa = ForeignAgent::install(Rc::clone(&fa_node), FA_ADDR, HA_ADDR, trace.clone());
        let client = MobileIpClient::install(Rc::clone(&mobile), MOBILE, HA_ADDR, trace.clone());

        let wireless = LinkParams::reliable(11_000_000, SimDuration::from_millis(3));
        if at_home {
            Network::connect(&ha_node, HA_ADDR, &mobile, MOBILE, wireless);
            mobile.add_route(Subnet::DEFAULT, HA_ADDR);
        } else {
            Network::connect(&fa_node, FA_ADDR, &mobile, MOBILE, wireless);
            mobile.add_route(Subnet::DEFAULT, FA_ADDR);
        }

        World {
            sim,
            corr,
            ha_node,
            fa_node,
            mobile,
            ha,
            fa,
            client,
            trace,
        }
    }

    fn udp_sink(node: &Rc<Node>) -> Rc<RefCell<Vec<IpPacket>>> {
        let got: Rc<RefCell<Vec<IpPacket>>> = Rc::default();
        let s = Rc::clone(&got);
        node.set_upper(Protocol::Udp, move |_sim, pkt| s.borrow_mut().push(pkt));
        got
    }

    #[test]
    fn at_home_packets_flow_without_tunneling() {
        let mut w = build(true);
        let got = udp_sink(&w.mobile);
        w.corr.send(
            &mut w.sim,
            IpPacket::new(CORR, MOBILE, Protocol::Udp, Payload::new((), 100)),
        );
        w.sim.run();
        assert_eq!(got.borrow().len(), 1);
        assert_eq!(w.ha.tunneled.get(), 0);
    }

    #[test]
    fn registration_completes_through_the_fa() {
        let mut w = build(false);
        w.client.register_via(&mut w.sim, FA_ADDR);
        w.sim.run();
        assert_eq!(w.client.state(), MipState::Registered);
        assert_eq!(w.ha.binding(MOBILE), Some(FA_ADDR));
        assert!(w.fa.has_visitor(MOBILE));
        assert!(w.trace.contains("mip", "HA bound"));
    }

    #[test]
    fn datagrams_are_intercepted_tunneled_and_delivered_while_roaming() {
        let mut w = build(false);
        let got = udp_sink(&w.mobile);
        w.client.register_via(&mut w.sim, FA_ADDR);
        w.sim.run();

        // The correspondent keeps sending to the mobile's *home* address —
        // transparency above the IP layer (§5.2).
        for _ in 0..5 {
            w.corr.send(
                &mut w.sim,
                IpPacket::new(CORR, MOBILE, Protocol::Udp, Payload::new((), 200)),
            );
        }
        w.sim.run();
        assert_eq!(got.borrow().len(), 5);
        assert_eq!(w.ha.tunneled.get(), 5);
        assert_eq!(w.fa.decapsulated.get(), 5);
        // Delivered packets carry the original addresses.
        assert_eq!(got.borrow()[0].src, CORR);
        assert_eq!(got.borrow()[0].dst, MOBILE);
    }

    #[test]
    fn unregistered_roaming_mobile_gets_nothing() {
        let mut w = build(false);
        let got = udp_sink(&w.mobile);
        // No registration: HA has no binding, datagrams go to the home
        // subnet where the mobile is absent.
        w.corr.send(
            &mut w.sim,
            IpPacket::new(CORR, MOBILE, Protocol::Udp, Payload::new((), 100)),
        );
        w.sim.run();
        assert_eq!(got.borrow().len(), 0);
        assert_eq!(w.ha.tunneled.get(), 0);
    }

    #[test]
    fn mobile_originated_traffic_uses_home_address_and_triangle_routes() {
        let mut w = build(false);
        let got = udp_sink(&w.corr);
        w.client.register_via(&mut w.sim, FA_ADDR);
        w.sim.run();
        w.mobile.send(
            &mut w.sim,
            IpPacket::new(MOBILE, CORR, Protocol::Udp, Payload::new((), 50)),
        );
        w.sim.run();
        assert_eq!(got.borrow().len(), 1);
        assert_eq!(got.borrow()[0].src, MOBILE); // home address preserved
        let _ = &w.fa_node;
    }

    #[test]
    fn deregistration_restores_home_delivery() {
        let mut w = build(false);
        w.client.register_via(&mut w.sim, FA_ADDR);
        w.sim.run();
        assert_eq!(w.ha.binding(MOBILE), Some(FA_ADDR));

        // Mobile returns home: tear down foreign attachment, reattach at
        // home, deregister.
        w.mobile.disconnect(FA_ADDR);
        w.fa_node.disconnect(MOBILE);
        w.fa.remove_visitor(MOBILE);
        w.mobile.remove_route(Subnet::DEFAULT);
        let wireless = LinkParams::reliable(11_000_000, SimDuration::from_millis(3));
        Network::connect(&w.ha_node, HA_ADDR, &w.mobile, MOBILE, wireless);
        w.mobile.add_route(Subnet::DEFAULT, HA_ADDR);
        w.client.deregister(&mut w.sim);
        w.sim.run();

        assert_eq!(w.ha.binding(MOBILE), None);
        assert_eq!(w.client.state(), MipState::Home);
        let got = udp_sink(&w.mobile);
        w.corr.send(
            &mut w.sim,
            IpPacket::new(CORR, MOBILE, Protocol::Udp, Payload::new((), 100)),
        );
        w.sim.run();
        assert_eq!(got.borrow().len(), 1);
        assert_eq!(w.ha.tunneled.get(), 0);
    }

    #[test]
    fn advertisements_drive_automatic_registration() {
        let mut w = build(false);
        w.client.set_auto_register(true);
        // The FA advertises every 100 ms; the mobile hears it and
        // registers with no explicit register_via call.
        w.fa.start_advertising(&mut w.sim, simnet::SimDuration::from_millis(100));
        w.sim.run_until(simnet::SimTime::from_millis(600));
        assert_eq!(w.client.state(), MipState::Registered);
        assert_eq!(w.ha.binding(MOBILE), Some(FA_ADDR));
        assert!(w.trace.contains("mip", "heard advertisement"));

        // Datagrams now flow to the roaming mobile with zero manual setup.
        let got = udp_sink(&w.mobile);
        w.corr.send(
            &mut w.sim,
            IpPacket::new(CORR, MOBILE, Protocol::Udp, Payload::new((), 100)),
        );
        w.sim.run_until(simnet::SimTime::from_millis(1_200));
        assert_eq!(got.borrow().len(), 1);
    }

    #[test]
    fn advertisements_do_not_rebind_an_already_registered_mobile() {
        let mut w = build(false);
        w.client.set_auto_register(true);
        w.fa.start_advertising(&mut w.sim, simnet::SimDuration::from_millis(100));
        w.sim.run_until(simnet::SimTime::from_millis(400));
        assert_eq!(w.client.state(), MipState::Registered);
        let registrations = w.trace.count("mip", "requesting registration");
        // Later advertisements from the same CoA cause no re-registration.
        w.sim.run_until(simnet::SimTime::from_millis(1_500));
        assert_eq!(
            w.trace.count("mip", "requesting registration"),
            registrations
        );
    }

    #[test]
    fn registration_callback_fires() {
        let mut w = build(false);
        let fired: Rc<RefCell<u32>> = Rc::default();
        let f = Rc::clone(&fired);
        w.client.on_registered(move |_| *f.borrow_mut() += 1);
        w.client.register_via(&mut w.sim, FA_ADDR);
        w.sim.run();
        assert_eq!(*fired.borrow(), 1);
    }
}
