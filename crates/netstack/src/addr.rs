//! IPv4-style addresses and subnets.

use std::fmt;
use std::str::FromStr;

/// A 32-bit network address, displayed dotted-quad.
///
/// ```
/// use netstack::Ip;
/// let ip: Ip = "10.0.0.7".parse()?;
/// assert_eq!(ip.to_string(), "10.0.0.7");
/// assert_eq!(ip.octets(), [10, 0, 0, 7]);
/// # Ok::<(), netstack::addr::ParseAddrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ip(pub u32);

impl Ip {
    /// Builds an address from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ip(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Error parsing an [`Ip`] or [`Subnet`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError {
    input: String,
}

impl fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseAddrError {}

impl FromStr for Ip {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseAddrError {
            input: s.to_owned(),
        };
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for slot in &mut octets {
            *slot = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        let [a, b, c, d] = octets;
        Ok(Ip::new(a, b, c, d))
    }
}

/// A CIDR subnet, e.g. `10.0.1.0/24`.
///
/// ```
/// use netstack::{Ip, Subnet};
/// let net: Subnet = "10.0.1.0/24".parse()?;
/// assert!(net.contains("10.0.1.200".parse()?));
/// assert!(!net.contains("10.0.2.1".parse()?));
/// # Ok::<(), netstack::addr::ParseAddrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Subnet {
    base: Ip,
    prefix_len: u8,
}

impl Subnet {
    /// Builds a subnet; host bits in `base` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    pub fn new(base: Ip, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length must be at most 32");
        Subnet {
            base: Ip(base.0 & Self::mask(prefix_len)),
            prefix_len,
        }
    }

    /// The all-addresses subnet `0.0.0.0/0` — the default route.
    pub const DEFAULT: Subnet = Subnet {
        base: Ip(0),
        prefix_len: 0,
    };

    fn mask(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len as u32)
        }
    }

    /// The network base address.
    pub fn base(self) -> Ip {
        self.base
    }

    /// The prefix length.
    pub fn prefix_len(self) -> u8 {
        self.prefix_len
    }

    /// True if `ip` lies inside the subnet.
    pub fn contains(self, ip: Ip) -> bool {
        (ip.0 & Self::mask(self.prefix_len)) == self.base.0
    }

    /// The `n`-th host address in the subnet.
    pub fn host(self, n: u32) -> Ip {
        Ip(self.base.0 | n)
    }
}

impl fmt::Display for Subnet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.prefix_len)
    }
}

impl FromStr for Subnet {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseAddrError {
            input: s.to_owned(),
        };
        let (addr, len) = s.split_once('/').ok_or_else(err)?;
        let base: Ip = addr.parse().map_err(|_| err())?;
        let prefix_len: u8 = len.parse().map_err(|_| err())?;
        if prefix_len > 32 {
            return Err(err());
        }
        Ok(Subnet::new(base, prefix_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_round_trips_text() {
        for text in ["0.0.0.0", "10.0.1.2", "255.255.255.255", "192.168.4.1"] {
            let ip: Ip = text.parse().unwrap();
            assert_eq!(ip.to_string(), text);
        }
    }

    #[test]
    fn bad_ips_fail_to_parse() {
        for text in ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"] {
            assert!(text.parse::<Ip>().is_err(), "{text:?} should not parse");
        }
    }

    #[test]
    fn subnet_membership() {
        let net = Subnet::new(Ip::new(10, 0, 1, 0), 24);
        assert!(net.contains(Ip::new(10, 0, 1, 0)));
        assert!(net.contains(Ip::new(10, 0, 1, 255)));
        assert!(!net.contains(Ip::new(10, 0, 2, 0)));
        assert!(Subnet::DEFAULT.contains(Ip::new(203, 1, 2, 3)));
    }

    #[test]
    fn subnet_masks_host_bits() {
        let net = Subnet::new(Ip::new(10, 0, 1, 77), 24);
        assert_eq!(net.base(), Ip::new(10, 0, 1, 0));
        assert_eq!(net.host(9), Ip::new(10, 0, 1, 9));
    }

    #[test]
    fn subnet_parses_and_displays() {
        let net: Subnet = "172.16.0.0/12".parse().unwrap();
        assert_eq!(net.to_string(), "172.16.0.0/12");
        assert_eq!(net.prefix_len(), 12);
        assert!("10.0.0.0/33".parse::<Subnet>().is_err());
        assert!("10.0.0.0".parse::<Subnet>().is_err());
    }

    #[test]
    fn prefix_zero_mask_is_empty() {
        assert_eq!(Subnet::mask(0), 0);
        assert_eq!(Subnet::mask(32), u32::MAX);
        assert_eq!(Subnet::mask(24), 0xffff_ff00);
    }
}
