#![warn(missing_docs)]
//! # netstack — simulated IP layer with Mobile IP
//!
//! The internetworking substrate under the paper's network components
//! (wired networks, component (v), and the IP side of wireless networks,
//! component (iv)). It provides:
//!
//! * [`addr`] — IPv4-style addresses and subnets,
//! * [`packet`] — IP datagrams with TTL, protocol demultiplexing, and
//!   IP-in-IP encapsulation,
//! * [`node`] — hosts/routers with interfaces, longest-prefix-match static
//!   routing and per-node packet taps (the hook reused by the Mobile IP
//!   home agent and by `transport`'s snoop base station),
//! * [`mobileip`] — the Mobile IP enhancement of §5.2: home agents,
//!   foreign agents, registration, care-of addresses and tunneling, so IP
//!   nodes can "seamlessly roam among IP subnetworks" while keeping
//!   "active TCP connections and UDP port bindings".

pub mod addr;
pub mod mobileip;
pub mod node;
pub mod packet;

pub use addr::{Ip, Subnet};
pub use node::{Network, Node};
pub use packet::{IpPacket, Payload, Protocol};
