//! IP datagrams.
//!
//! An [`IpPacket`] carries an opaque [`Payload`] tagged with a
//! [`Protocol`]; upper layers downcast the payload back to their own
//! segment types. IP-in-IP encapsulation (used by Mobile IP tunnels) nests
//! a whole packet as the payload of another.

use std::any::Any;
use std::fmt;
use std::rc::Rc;

use bytes::Bytes;
use simnet::link::Wire;

use crate::addr::Ip;

/// Size of the simulated IP header in bytes.
pub const IP_HEADER_BYTES: usize = 20;

/// Default initial TTL.
pub const DEFAULT_TTL: u8 = 64;

/// The transport (or tunnel/control) protocol of a packet's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Transmission Control Protocol segments.
    Tcp,
    /// User Datagram Protocol datagrams.
    Udp,
    /// IP-in-IP: the payload is a complete inner [`IpPacket`].
    IpInIp,
    /// Mobile IP control messages (registration request/reply,
    /// advertisements).
    MipControl,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Protocol::Tcp => "tcp",
            Protocol::Udp => "udp",
            Protocol::IpInIp => "ip-in-ip",
            Protocol::MipControl => "mip",
        })
    }
}

/// An opaque, cheaply clonable payload with an explicit wire size.
///
/// Upper layers store their own segment structs in here and downcast on
/// receive; the network layers only ever look at the size.
#[derive(Clone)]
pub struct Payload {
    data: Rc<dyn Any>,
    size: usize,
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Payload").field("size", &self.size).finish()
    }
}

impl Payload {
    /// Wraps `data`, declaring it occupies `size` bytes on the wire.
    pub fn new<T: Any>(data: T, size: usize) -> Self {
        Payload {
            data: Rc::new(data),
            size,
        }
    }

    /// An empty payload (pure signalling packets).
    pub fn empty() -> Self {
        Payload {
            data: Rc::new(()),
            size: 0,
        }
    }

    /// Wraps a refcounted byte chunk, charging its length on the wire.
    ///
    /// The chunk is shared, not copied: forwarding, tunnelling, and
    /// snooping a packet all clone two reference counts (the payload `Rc`
    /// and the `Bytes` inside) rather than the body.
    pub fn bytes(data: Bytes) -> Self {
        let size = data.len();
        Payload {
            data: Rc::new(data),
            size,
        }
    }

    /// Views the payload as a raw byte chunk, when it was built with
    /// [`Payload::bytes`].
    pub fn as_bytes(&self) -> Option<&Bytes> {
        self.downcast_ref::<Bytes>()
    }

    /// Declared wire size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Attempts to view the payload as a `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.data.downcast_ref()
    }
}

/// A simulated IP datagram.
#[derive(Debug, Clone)]
pub struct IpPacket {
    /// Source address.
    pub src: Ip,
    /// Destination address.
    pub dst: Ip,
    /// Remaining hop budget; the packet is discarded when it hits zero.
    pub ttl: u8,
    /// Payload protocol tag.
    pub proto: Protocol,
    /// The payload itself.
    pub payload: Payload,
}

impl IpPacket {
    /// Builds a packet with the default TTL.
    pub fn new(src: Ip, dst: Ip, proto: Protocol, payload: Payload) -> Self {
        IpPacket {
            src,
            dst,
            ttl: DEFAULT_TTL,
            proto,
            payload,
        }
    }

    /// Encapsulates `self` in an outer packet from `tunnel_src` to
    /// `tunnel_dst` (IP-in-IP, as a Mobile IP home agent does toward the
    /// care-of address).
    pub fn encapsulate(self, tunnel_src: Ip, tunnel_dst: Ip) -> IpPacket {
        let size = self.wire_size();
        IpPacket::new(
            tunnel_src,
            tunnel_dst,
            Protocol::IpInIp,
            Payload::new(self, size),
        )
    }

    /// Recovers the inner packet of an IP-in-IP tunnel packet.
    ///
    /// Returns `None` when the packet is not a tunnel packet.
    pub fn decapsulate(&self) -> Option<IpPacket> {
        if self.proto != Protocol::IpInIp {
            return None;
        }
        self.payload.downcast_ref::<IpPacket>().cloned()
    }
}

impl Wire for IpPacket {
    fn wire_size(&self) -> usize {
        IP_HEADER_BYTES + self.payload.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(d: u8) -> Ip {
        Ip::new(10, 0, 0, d)
    }

    #[test]
    fn wire_size_is_header_plus_payload() {
        let p = IpPacket::new(
            ip(1),
            ip(2),
            Protocol::Udp,
            Payload::new(vec![0u8; 100], 100),
        );
        assert_eq!(p.wire_size(), 120);
        let empty = IpPacket::new(ip(1), ip(2), Protocol::MipControl, Payload::empty());
        assert_eq!(empty.wire_size(), 20);
    }

    #[test]
    fn bytes_payload_shares_the_chunk() {
        let body = Bytes::from(vec![9u8; 64]);
        let p = Payload::bytes(body.clone());
        assert_eq!(p.size(), 64);
        assert_eq!(p.as_bytes().unwrap(), &body);
        // Cloning the payload shares both the Rc and the chunk.
        let q = p.clone();
        assert_eq!(q.as_bytes().unwrap().as_ref(), body.as_ref());
        assert!(Payload::empty().as_bytes().is_none());
    }

    #[test]
    fn payload_downcasts_to_the_stored_type() {
        #[derive(Debug, PartialEq)]
        struct Seg(u32);
        let p = Payload::new(Seg(7), 4);
        assert_eq!(p.downcast_ref::<Seg>(), Some(&Seg(7)));
        assert!(p.downcast_ref::<String>().is_none());
    }

    #[test]
    fn encapsulation_nests_and_charges_an_extra_header() {
        let inner = IpPacket::new(ip(1), ip(2), Protocol::Tcp, Payload::new((), 500));
        let inner_size = inner.wire_size();
        let outer = inner.encapsulate(ip(10), ip(20));
        assert_eq!(outer.proto, Protocol::IpInIp);
        assert_eq!(outer.wire_size(), inner_size + IP_HEADER_BYTES);
        let back = outer.decapsulate().expect("tunnel packet");
        assert_eq!(back.src, ip(1));
        assert_eq!(back.dst, ip(2));
        assert_eq!(back.payload.size(), 500);
    }

    #[test]
    fn decapsulating_a_plain_packet_is_none() {
        let p = IpPacket::new(ip(1), ip(2), Protocol::Udp, Payload::empty());
        assert!(p.decapsulate().is_none());
    }

    #[test]
    fn double_encapsulation_unwraps_one_layer_at_a_time() {
        let inner = IpPacket::new(ip(1), ip(2), Protocol::Tcp, Payload::new((), 100));
        let mid = inner.encapsulate(ip(3), ip(4));
        let outer = mid.encapsulate(ip(5), ip(6));
        assert_eq!(outer.wire_size(), 100 + 3 * IP_HEADER_BYTES);
        let mid2 = outer.decapsulate().unwrap();
        assert_eq!(mid2.dst, ip(4));
        let inner2 = mid2.decapsulate().unwrap();
        assert_eq!(inner2.dst, ip(2));
        assert!(inner2.decapsulate().is_none());
    }
}
