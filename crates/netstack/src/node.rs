//! Hosts and routers.
//!
//! A [`Node`] owns interfaces (links to neighbours), a static routing
//! table with longest-prefix match, per-protocol upper-layer handlers, and
//! an optional packet *tap* that sees every arriving packet before normal
//! processing — the mechanism behind both the Mobile IP home agent's
//! interception (§5.2) and the snoop base-station cache of
//! Balakrishnan et al. \[1\].

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use simnet::link::{Link, LinkParams};
use simnet::stats::Counter;
use simnet::Simulator;

use crate::addr::{Ip, Subnet};
use crate::packet::{IpPacket, Protocol};

/// Outcome of a tap inspecting a packet.
pub enum TapResult {
    /// Keep processing (possibly a modified packet).
    Continue(IpPacket),
    /// The tap consumed the packet; normal processing stops.
    Consumed,
}

type Tap = Rc<dyn Fn(&mut Simulator, &Rc<Node>, IpPacket) -> TapResult>;
type UpperHandler = Rc<dyn Fn(&mut Simulator, IpPacket)>;

struct NodeInner {
    addrs: Vec<Ip>,
    /// Interfaces keyed by the neighbour's address on the shared link.
    ifaces: HashMap<Ip, Rc<Link<IpPacket>>>,
    /// `(destination, next-hop neighbour)` routes.
    routes: Vec<(Subnet, Ip)>,
    upper: HashMap<Protocol, UpperHandler>,
    tap: Option<Tap>,
}

/// A host or router in the simulated internetwork.
pub struct Node {
    name: String,
    inner: RefCell<NodeInner>,
    /// Packets delivered to an upper-layer handler here.
    pub delivered: Counter,
    /// Packets forwarded onward.
    pub forwarded: Counter,
    /// Packets dropped because the TTL expired.
    pub dropped_ttl: Counter,
    /// Packets dropped for lack of a route or local handler.
    pub dropped_unroutable: Counter,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Node")
            .field("name", &self.name)
            .field("addrs", &inner.addrs)
            .field("ifaces", &inner.ifaces.keys().collect::<Vec<_>>())
            .field("routes", &inner.routes.len())
            .finish()
    }
}

impl Node {
    /// Creates a node with no addresses, interfaces or routes.
    pub fn new(name: impl Into<String>) -> Rc<Self> {
        Rc::new(Node {
            name: name.into(),
            inner: RefCell::new(NodeInner {
                addrs: Vec::new(),
                ifaces: HashMap::new(),
                routes: Vec::new(),
                upper: HashMap::new(),
                tap: None,
            }),
            delivered: Counter::new(),
            forwarded: Counter::new(),
            dropped_ttl: Counter::new(),
            dropped_unroutable: Counter::new(),
        })
    }

    /// The node's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a local address.
    pub fn add_addr(&self, ip: Ip) {
        self.inner.borrow_mut().addrs.push(ip);
    }

    /// True if `ip` is one of this node's addresses.
    pub fn has_addr(&self, ip: Ip) -> bool {
        self.inner.borrow().addrs.contains(&ip)
    }

    /// The node's first address.
    ///
    /// # Panics
    ///
    /// Panics if the node has no addresses.
    pub fn primary_addr(&self) -> Ip {
        self.inner.borrow().addrs[0]
    }

    /// Adds a route: packets for `dest` go to neighbour `via`.
    pub fn add_route(&self, dest: Subnet, via: Ip) {
        self.inner.borrow_mut().routes.push((dest, via));
    }

    /// Removes all routes to exactly `dest`.
    pub fn remove_route(&self, dest: Subnet) {
        self.inner.borrow_mut().routes.retain(|(d, _)| *d != dest);
    }

    /// Registers the link used to reach neighbour `neighbor`.
    pub fn add_iface(&self, neighbor: Ip, link: Rc<Link<IpPacket>>) {
        self.inner.borrow_mut().ifaces.insert(neighbor, link);
    }

    /// Tears down the interface (and host route) toward `neighbor` —
    /// what physically happens when a mobile station leaves a cell.
    pub fn disconnect(&self, neighbor: Ip) {
        let mut inner = self.inner.borrow_mut();
        inner.ifaces.remove(&neighbor);
        inner
            .routes
            .retain(|(d, via)| !(*via == neighbor && *d == Subnet::new(neighbor, 32)));
    }

    /// The link toward `neighbor`, if connected.
    pub fn iface(&self, neighbor: Ip) -> Option<Rc<Link<IpPacket>>> {
        self.inner.borrow().ifaces.get(&neighbor).cloned()
    }

    /// Addresses of all directly connected neighbours.
    pub fn neighbors(&self) -> Vec<Ip> {
        let mut list: Vec<Ip> = self.inner.borrow().ifaces.keys().copied().collect();
        list.sort();
        list
    }

    /// Installs the handler for locally delivered packets of `proto`.
    pub fn set_upper(&self, proto: Protocol, handler: impl Fn(&mut Simulator, IpPacket) + 'static) {
        self.inner
            .borrow_mut()
            .upper
            .insert(proto, Rc::new(handler));
    }

    /// Installs a tap inspecting every packet that arrives at this node.
    pub fn set_tap(
        &self,
        tap: impl Fn(&mut Simulator, &Rc<Node>, IpPacket) -> TapResult + 'static,
    ) {
        self.inner.borrow_mut().tap = Some(Rc::new(tap));
    }

    /// Removes the tap.
    pub fn clear_tap(&self) {
        self.inner.borrow_mut().tap = None;
    }

    /// Longest-prefix-match route lookup; returns the next-hop neighbour.
    pub fn route_for(&self, dst: Ip) -> Option<Ip> {
        self.inner
            .borrow()
            .routes
            .iter()
            .filter(|(net, _)| net.contains(dst))
            .max_by_key(|(net, _)| net.prefix_len())
            .map(|(_, via)| *via)
    }

    /// Handles a packet arriving from the network.
    pub fn receive(self: &Rc<Self>, sim: &mut Simulator, pkt: IpPacket) {
        let tap = self.inner.borrow().tap.clone();
        let pkt = if let Some(tap) = tap {
            match tap(sim, self, pkt) {
                TapResult::Continue(p) => p,
                TapResult::Consumed => return,
            }
        } else {
            pkt
        };

        if self.has_addr(pkt.dst) {
            self.deliver_up(sim, pkt);
        } else {
            self.forward(sim, pkt);
        }
    }

    fn deliver_up(self: &Rc<Self>, sim: &mut Simulator, pkt: IpPacket) {
        let handler = self.inner.borrow().upper.get(&pkt.proto).cloned();
        match handler {
            Some(h) => {
                self.delivered.incr();
                h(sim, pkt);
            }
            None => {
                self.dropped_unroutable.incr();
            }
        }
    }

    /// Forwards a transit packet: decrements TTL, routes, transmits.
    pub fn forward(self: &Rc<Self>, sim: &mut Simulator, mut pkt: IpPacket) {
        if pkt.ttl <= 1 {
            self.dropped_ttl.incr();
            return;
        }
        pkt.ttl -= 1;
        obs::metrics::incr("netstack.forwarded");
        self.transmit(sim, pkt);
    }

    /// Sends a locally originated packet (no TTL charge at the origin).
    ///
    /// Packets addressed to this node loop back to the upper layer.
    pub fn send(self: &Rc<Self>, sim: &mut Simulator, pkt: IpPacket) {
        obs::metrics::incr("netstack.sent");
        if self.has_addr(pkt.dst) {
            self.deliver_up(sim, pkt);
            return;
        }
        self.transmit(sim, pkt);
    }

    /// Sends `pkt` straight out of the interface toward `neighbor`,
    /// bypassing the routing table (used by a foreign agent delivering a
    /// decapsulated packet to a visiting mobile whose address belongs to a
    /// different subnet).
    pub fn send_direct(self: &Rc<Self>, sim: &mut Simulator, neighbor: Ip, pkt: IpPacket) {
        match self.iface(neighbor) {
            Some(link) => {
                self.forwarded.incr();
                link.send(sim, pkt);
            }
            None => {
                self.dropped_unroutable.incr();
            }
        }
    }

    fn transmit(self: &Rc<Self>, sim: &mut Simulator, pkt: IpPacket) {
        let Some(via) = self.route_for(pkt.dst) else {
            self.dropped_unroutable.incr();
            return;
        };
        let Some(link) = self.iface(via) else {
            self.dropped_unroutable.incr();
            return;
        };
        self.forwarded.incr();
        link.send(sim, pkt);
    }
}

/// A registry of nodes plus topology-building helpers.
#[derive(Debug, Default)]
pub struct Network {
    nodes: Vec<Rc<Node>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a node, registers it, assigns `addr`.
    pub fn add_node(&mut self, name: impl Into<String>, addr: Ip) -> Rc<Node> {
        let node = Node::new(name);
        node.add_addr(addr);
        self.nodes.push(Rc::clone(&node));
        node
    }

    /// All registered nodes.
    pub fn nodes(&self) -> &[Rc<Node>] {
        &self.nodes
    }

    /// Connects two nodes with a symmetric pair of links built from
    /// `params`, wires up receive callbacks, and installs host routes in
    /// both directions. Returns `(a→b link, b→a link)` so callers can
    /// attach loss RNGs or handoff controllers.
    pub fn connect(
        a: &Rc<Node>,
        a_addr: Ip,
        b: &Rc<Node>,
        b_addr: Ip,
        params: LinkParams,
    ) -> (Rc<Link<IpPacket>>, Rc<Link<IpPacket>>) {
        let ab = Link::new(params.clone());
        let ba = Link::new(params);
        Self::connect_with_links(a, a_addr, b, b_addr, Rc::clone(&ab), Rc::clone(&ba));
        (ab, ba)
    }

    /// Like [`Network::connect`], but with caller-supplied links (already
    /// configured with loss models and RNGs).
    pub fn connect_with_links(
        a: &Rc<Node>,
        a_addr: Ip,
        b: &Rc<Node>,
        b_addr: Ip,
        ab: Rc<Link<IpPacket>>,
        ba: Rc<Link<IpPacket>>,
    ) {
        {
            let b = Rc::clone(b);
            ab.set_receiver(move |sim, pkt| b.receive(sim, pkt));
        }
        {
            let a = Rc::clone(a);
            ba.set_receiver(move |sim, pkt| a.receive(sim, pkt));
        }
        a.add_iface(b_addr, ab);
        b.add_iface(a_addr, ba);
        a.add_route(Subnet::new(b_addr, 32), b_addr);
        b.add_route(Subnet::new(a_addr, 32), a_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Payload;
    use simnet::SimDuration;
    use std::cell::RefCell;

    fn ip(d: u8) -> Ip {
        Ip::new(10, 0, 0, d)
    }

    /// Builds a 3-node chain a — r — b and returns (a, r, b).
    fn chain() -> (Rc<Node>, Rc<Node>, Rc<Node>) {
        let mut net = Network::new();
        let a = net.add_node("a", ip(1));
        let r = net.add_node("r", ip(2));
        let b = net.add_node("b", ip(3));
        let params = LinkParams::reliable(1_000_000, SimDuration::from_millis(1));
        Network::connect(&a, ip(1), &r, ip(2), params.clone());
        Network::connect(&r, ip(2), &b, ip(3), params);
        // a reaches everything via r; b likewise.
        a.add_route(Subnet::DEFAULT, ip(2));
        b.add_route(Subnet::DEFAULT, ip(2));
        (a, r, b)
    }

    fn sink(node: &Rc<Node>) -> Rc<RefCell<Vec<IpPacket>>> {
        let got: Rc<RefCell<Vec<IpPacket>>> = Rc::default();
        let s = Rc::clone(&got);
        node.set_upper(Protocol::Udp, move |_sim, pkt| s.borrow_mut().push(pkt));
        got
    }

    #[test]
    fn end_to_end_forwarding_through_a_router() {
        let mut sim = Simulator::new();
        let (a, r, b) = chain();
        let got = sink(&b);
        a.send(
            &mut sim,
            IpPacket::new(ip(1), ip(3), Protocol::Udp, Payload::new((), 100)),
        );
        sim.run();
        assert_eq!(got.borrow().len(), 1);
        assert_eq!(got.borrow()[0].src, ip(1));
        assert_eq!(got.borrow()[0].ttl, crate::packet::DEFAULT_TTL - 1);
        assert_eq!(r.forwarded.get(), 1);
    }

    #[test]
    fn longest_prefix_match_wins() {
        let node = Node::new("t");
        node.add_addr(ip(9));
        node.add_route(Subnet::DEFAULT, ip(100));
        node.add_route("10.0.0.0/24".parse().unwrap(), ip(101));
        node.add_route(Subnet::new(ip(3), 32), ip(102));
        assert_eq!(node.route_for(ip(3)), Some(ip(102)));
        assert_eq!(node.route_for(ip(200)), Some(ip(101)));
        assert_eq!(node.route_for(Ip::new(192, 168, 0, 1)), Some(ip(100)));
    }

    #[test]
    fn ttl_expiry_drops_packets() {
        let mut sim = Simulator::new();
        let (a, r, b) = chain();
        let got = sink(&b);
        let mut pkt = IpPacket::new(ip(1), ip(3), Protocol::Udp, Payload::empty());
        pkt.ttl = 1;
        a.send(&mut sim, pkt);
        sim.run();
        assert_eq!(got.borrow().len(), 0);
        assert_eq!(r.dropped_ttl.get(), 1);
    }

    #[test]
    fn unroutable_packets_are_counted() {
        let mut sim = Simulator::new();
        let a = Node::new("lonely");
        a.add_addr(ip(1));
        a.send(
            &mut sim,
            IpPacket::new(ip(1), ip(99), Protocol::Udp, Payload::empty()),
        );
        assert_eq!(a.dropped_unroutable.get(), 1);
    }

    #[test]
    fn local_send_loops_back() {
        let mut sim = Simulator::new();
        let a = Node::new("a");
        a.add_addr(ip(1));
        let got = sink(&a);
        a.send(
            &mut sim,
            IpPacket::new(ip(1), ip(1), Protocol::Udp, Payload::empty()),
        );
        sim.run();
        assert_eq!(got.borrow().len(), 1);
    }

    #[test]
    fn delivery_without_handler_is_dropped() {
        let mut sim = Simulator::new();
        let (a, _r, b) = chain();
        // No UDP handler registered on b.
        a.send(
            &mut sim,
            IpPacket::new(ip(1), ip(3), Protocol::Udp, Payload::empty()),
        );
        sim.run();
        assert_eq!(b.dropped_unroutable.get(), 1);
        assert_eq!(b.delivered.get(), 0);
    }

    #[test]
    fn tap_can_consume_packets() {
        let mut sim = Simulator::new();
        let (a, r, b) = chain();
        let got = sink(&b);
        let eaten: Rc<RefCell<u32>> = Rc::default();
        let e = Rc::clone(&eaten);
        r.set_tap(move |_sim, _node, pkt| {
            if pkt.payload.size() == 13 {
                *e.borrow_mut() += 1;
                TapResult::Consumed
            } else {
                TapResult::Continue(pkt)
            }
        });
        a.send(
            &mut sim,
            IpPacket::new(ip(1), ip(3), Protocol::Udp, Payload::new((), 13)),
        );
        a.send(
            &mut sim,
            IpPacket::new(ip(1), ip(3), Protocol::Udp, Payload::new((), 99)),
        );
        sim.run();
        assert_eq!(*eaten.borrow(), 1);
        assert_eq!(got.borrow().len(), 1);
        assert_eq!(got.borrow()[0].payload.size(), 99);
    }

    #[test]
    fn tap_can_rewrite_packets() {
        let mut sim = Simulator::new();
        let (a, r, b) = chain();
        let got = sink(&b);
        r.set_tap(move |_sim, _node, mut pkt| {
            pkt.src = ip(42); // NAT-style rewrite
            TapResult::Continue(pkt)
        });
        a.send(
            &mut sim,
            IpPacket::new(ip(1), ip(3), Protocol::Udp, Payload::empty()),
        );
        sim.run();
        assert_eq!(got.borrow()[0].src, ip(42));
        r.clear_tap();
        a.send(
            &mut sim,
            IpPacket::new(ip(1), ip(3), Protocol::Udp, Payload::empty()),
        );
        sim.run();
        assert_eq!(got.borrow()[1].src, ip(1));
    }

    #[test]
    fn disconnect_tears_down_the_path() {
        let mut sim = Simulator::new();
        let (a, r, b) = chain();
        let got = sink(&b);
        r.disconnect(ip(3));
        a.send(
            &mut sim,
            IpPacket::new(ip(1), ip(3), Protocol::Udp, Payload::empty()),
        );
        sim.run();
        assert_eq!(got.borrow().len(), 0);
        assert_eq!(r.dropped_unroutable.get(), 1);
    }

    #[test]
    fn send_direct_bypasses_routing() {
        let mut sim = Simulator::new();
        let (a, r, b) = chain();
        let got = sink(&b);
        // r has no route for 99.99.99.99, but can push it out the b iface.
        let stray = IpPacket::new(
            ip(1),
            Ip::new(99, 99, 99, 99),
            Protocol::Udp,
            Payload::empty(),
        );
        r.send_direct(&mut sim, ip(3), stray);
        sim.run();
        // b does not own 99.99.99.99 and has no route back out besides r;
        // it tries to forward and r drops it — but the direct hop happened.
        assert_eq!(r.forwarded.get(), 1);
        let _ = (a, got);
    }
}
